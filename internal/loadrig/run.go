package loadrig

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/apierr"
	"github.com/datamarket/shield/internal/client"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/wire"
)

// Transports a scenario can drive.
const (
	TransportHTTP = "http"
	TransportWire = "wire"
	TransportBoth = "both" // clients split evenly across both listeners
)

// Scenario describes one load run against a Rig.
type Scenario struct {
	// Transport is "http", "wire", or "both".
	Transport string
	// Clients is the number of concurrent client connections (each a
	// worker with its own persona and RNG stream).
	Clients int
	// Rate is the open-loop offered load in operations per second,
	// across all clients.
	Rate float64
	// Ops is the total number of operations to schedule.
	Ops int
	// BidFraction is the fraction of scheduled ops that are bids
	// (default 0.8); the rest are read queries.
	BidFraction float64
	// TickEvery advances the market period every N scheduled ops
	// (0 = never), so Time-Shield waits expire and buyers re-enter.
	TickEvery int
	// Seed derives every worker's RNG stream; a scenario replays
	// bit-identically from (Seed, Clients, Ops).
	Seed uint64
	// Timeout bounds each operation (default 5s). Timed-out ops count
	// as errors.
	Timeout time.Duration
	// InjectLatency adds an artificial delay to the measured latency of
	// every op of a class before it is recorded — a fault-injection
	// hook that lets a canary prove the SLO gate actually trips on a
	// latency regression (the measurement, evaluation, and exit-code
	// path all run for real).
	InjectLatency map[string]time.Duration
	// ReplicaFraction routes this fraction of scheduled ops to the rig's
	// read replicas as ClassReplica reads (carved out of the query
	// share, so bid volume is unchanged). Requires RigConfig.Followers.
	ReplicaFraction float64
	// KillFollower drops follower 0's replication connection at the
	// schedule's midpoint; the follower must redial, catch up, and still
	// satisfy the replica.lag SLO clause.
	KillFollower bool
}

// job is one scheduled operation.
type job struct {
	due  time.Time
	kind string // ClassBid, ClassQuery, ClassTick
}

// Run drives the scenario against the rig and returns the measured
// report. The dispatcher paces jobs on the open-loop schedule into a
// queue deep enough to never block, so when workers fall behind the
// scheduled times age in the queue and the measured latency includes
// every queued microsecond (see the package comment on coordinated
// omission). Server-side histogram quantiles for the bid path are
// attached for cross-checking.
func Run(rig *Rig, sc Scenario) (*Report, error) {
	if sc.Clients <= 0 || sc.Ops <= 0 {
		return nil, fmt.Errorf("loadrig: scenario needs positive Clients and Ops (got %d, %d)", sc.Clients, sc.Ops)
	}
	if sc.BidFraction == 0 {
		sc.BidFraction = 0.8
	}
	if sc.BidFraction < 0 || sc.BidFraction > 1 {
		return nil, fmt.Errorf("loadrig: BidFraction %v outside [0, 1]", sc.BidFraction)
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 5 * time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.ReplicaFraction < 0 || sc.BidFraction+sc.ReplicaFraction > 1 {
		return nil, fmt.Errorf("loadrig: BidFraction %v + ReplicaFraction %v outside [0, 1]",
			sc.BidFraction, sc.ReplicaFraction)
	}
	if (sc.ReplicaFraction > 0 || sc.KillFollower) && len(rig.FollowerAddrs) == 0 {
		return nil, errors.New("loadrig: scenario drives replicas but the rig has no followers (set RigConfig.Followers)")
	}
	pacer, err := NewPacer(sc.Rate)
	if err != nil {
		return nil, err
	}

	clients, err := dialClients(rig, sc)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
	}()
	replicaClients, err := dialReplicaClients(rig, sc)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, cl := range replicaClients {
			_ = cl.Close()
		}
	}()
	if err := warm(append(append([]client.Client(nil), clients...), replicaClients...), sc.Timeout); err != nil {
		return nil, err
	}

	// The jobs queue holds the whole schedule so the dispatcher never
	// blocks on slow workers — blocking would silently convert the rig
	// to a closed loop.
	jobs := make(chan job, sc.Ops)
	root := rng.New(sc.Seed)
	dispatchRNG := root.Fork("dispatch")

	recs := make([]*recorder, sc.Clients)
	var wg sync.WaitGroup
	for i := 0; i < sc.Clients; i++ {
		recs[i] = &recorder{}
		w := &worker{
			cl:       clients[i],
			buyer:    rig.Buyers[i%len(rig.Buyers)],
			persona:  Personas[i%len(Personas)],
			rng:      root.Fork(fmt.Sprintf("worker-%d", i)),
			datasets: rig.Datasets,
			timeout:  sc.Timeout,
			inject:   sc.InjectLatency,
			rec:      recs[i],
		}
		if len(replicaClients) > 0 {
			w.replica = replicaClients[i%len(replicaClients)]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(jobs)
		}()
	}

	lagStop, lagResult := sampleReplicaLag(rig)
	killAt := -1
	if sc.KillFollower {
		killAt = sc.Ops / 2
	}

	start := time.Now()
	for i := 0; i < sc.Ops; i++ {
		if i == killAt {
			rig.KillFollower(0)
		}
		// One RNG draw per op keeps replays of replica-free scenarios
		// bit-identical to earlier versions of the rig; replica reads
		// carve their share out of the query band above BidFraction.
		draw := dispatchRNG.Float64()
		kind := ClassQuery
		switch {
		case sc.TickEvery > 0 && i > 0 && i%sc.TickEvery == 0:
			kind = ClassTick
		case draw < sc.BidFraction:
			kind = ClassBid
		case draw < sc.BidFraction+sc.ReplicaFraction:
			kind = ClassReplica
		}
		jobs <- job{due: pacer.Next(), kind: kind}
	}
	close(jobs)
	wg.Wait()
	duration := time.Since(start)
	close(lagStop)
	lag := <-lagResult

	rep := buildReport(recs, duration)
	rep.ServerQuantiles = serverQuantiles(rig)
	rep.ServerStages = serverStages(rig)
	rep.ReplicaMaxLag = lag.max
	rep.ReplicaLagSamples = lag.samples
	return rep, nil
}

// lagSample is the result of one run's replica-lag polling.
type lagSample struct {
	max     float64
	samples int
}

// sampleReplicaLag polls every follower's staleness on a 25ms cadence
// for the run's duration and reports the worst lag observed — the
// measurement behind the replica.lag SLO clause. The poll keeps running
// through follower kills, so reconnect-and-catch-up time is charged to
// the lag number a gate evaluates.
func sampleReplicaLag(rig *Rig) (chan<- struct{}, <-chan lagSample) {
	stop := make(chan struct{})
	result := make(chan lagSample, 1)
	go func() {
		var out lagSample
		defer func() { result <- out }()
		if len(rig.Followers) == 0 {
			return
		}
		poll := func() {
			for _, f := range rig.Followers {
				_, _, lag, _ := f.Staleness()
				if lag > out.max {
					out.max = lag
				}
				out.samples++
			}
		}
		poll() // at least one sample even for sub-tick runs
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				poll() // the closing sample covers the schedule's tail
				return
			case <-tick.C:
				poll()
			}
		}
	}()
	return stop, result
}

// dialClients opens the scenario's connections, split across transports
// for TransportBoth. Wire connections use small buffers: at thousands
// of connections the default 64KiB pairs dominate the rig's footprint.
func dialClients(rig *Rig, sc Scenario) ([]client.Client, error) {
	httpCount := 0
	switch sc.Transport {
	case TransportHTTP:
		httpCount = sc.Clients
	case TransportWire:
	case TransportBoth:
		httpCount = sc.Clients / 2
	default:
		return nil, fmt.Errorf("loadrig: unknown transport %q (want http, wire, or both)", sc.Transport)
	}

	// One transport sized to the client count, so every HTTP worker
	// keeps a persistent connection instead of churning through
	// http.DefaultClient's two idle slots per host.
	var doer *http.Client
	if httpCount > 0 {
		doer = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        httpCount + 8,
			MaxIdleConnsPerHost: httpCount + 8,
		}}
	}

	clients := make([]client.Client, sc.Clients)
	errs := make([]error, sc.Clients)
	// Dialing serially at 1k+ connections takes whole seconds; a
	// bounded dial pool keeps startup off the measured clock.
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if i < httpCount {
				clients[i], errs[i] = client.Dial(rig.HTTPAddr, client.WithHTTPDoer(doer))
				return
			}
			conn, err := wire.DialSize(rig.WireAddr, 4<<10)
			if err != nil {
				errs[i] = err
				return
			}
			clients[i] = client.NewWire(conn)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, cl := range clients {
			if cl != nil {
				_ = cl.Close()
			}
		}
		return nil, fmt.Errorf("loadrig: dialing %d clients: %w", sc.Clients, err)
	}
	return clients, nil
}

// warm pings every client before the schedule's clock starts. The HTTP
// transport connects lazily, so without this the first schedule slots
// pay the whole fleet's TCP setup and the startup transient reads as
// server tail latency in the report.
func warm(clients []client.Client, timeout time.Duration) error {
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl client.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			errs[i] = cl.Ping(ctx)
		}(i, cl)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("loadrig: warming %d clients: %w", len(clients), err)
	}
	return nil
}

// dialReplicaClients opens one HTTP connection per worker to the rig's
// followers, round-robin, when the scenario drives ClassReplica reads.
func dialReplicaClients(rig *Rig, sc Scenario) ([]client.Client, error) {
	if sc.ReplicaFraction <= 0 {
		return nil, nil
	}
	doer := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        sc.Clients + 8,
		MaxIdleConnsPerHost: sc.Clients + 8,
	}}
	clients := make([]client.Client, sc.Clients)
	errs := make([]error, sc.Clients)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			addr := rig.FollowerAddrs[i%len(rig.FollowerAddrs)]
			clients[i], errs[i] = client.Dial(addr, client.WithHTTPDoer(doer))
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, cl := range clients {
			if cl != nil {
				_ = cl.Close()
			}
		}
		return nil, fmt.Errorf("loadrig: dialing %d replica clients: %w", sc.Clients, err)
	}
	return clients, nil
}

// worker executes jobs on one connection, as one buyer, under one
// persona.
type worker struct {
	cl       client.Client
	replica  client.Client // read replica connection (nil without followers)
	buyer    market.BuyerID
	persona  Persona
	rng      *rng.RNG
	datasets []market.DatasetID
	timeout  time.Duration
	inject   map[string]time.Duration
	rec      *recorder
}

func (w *worker) loop(jobs <-chan job) {
	for j := range jobs {
		w.execute(j)
	}
}

// execute runs one scheduled op and records its sample. Latency is
// measured from the job's scheduled send time, not from now: the gap
// between the two is exactly the queueing delay coordinated omission
// would hide.
func (w *worker) execute(j job) {
	ctx, cancel := context.WithTimeout(context.Background(), w.timeout)
	defer cancel()

	s := sample{class: j.kind}
	switch j.kind {
	case ClassBid:
		ds := w.datasets[w.rng.Intn(len(w.datasets))]
		d, err := w.cl.SubmitBid(ctx, w.buyer, ds, w.persona.Bid(w.rng))
		s.err, s.reject = classify(err)
		s.won = err == nil && d.Allocated
	case ClassTick:
		_, err := w.cl.Tick(ctx)
		s.err, s.reject = classify(err)
	case ClassReplica:
		err := w.queryOn(ctx, w.replica)
		s.err, s.reject = classify(err)
	default:
		err := w.queryOn(ctx, w.cl)
		s.err, s.reject = classify(err)
	}

	s.latency = time.Since(j.due)
	if d := w.inject[j.kind]; d > 0 {
		s.latency += d
	}
	w.rec.record(s)
}

// queryOn issues one read op against cl — the leader connection for
// ClassQuery, a follower's read-only HTTP listener for ClassReplica —
// rotating deterministically through the read surface.
func (w *worker) queryOn(ctx context.Context, cl client.Client) error {
	ds := w.datasets[w.rng.Intn(len(w.datasets))]
	switch w.rng.Intn(4) {
	case 0:
		_, err := cl.Period(ctx)
		return err
	case 1:
		_, err := cl.Datasets(ctx)
		return err
	case 2:
		_, err := cl.WaitRemaining(ctx, w.buyer, ds)
		return err
	default:
		_, err := cl.SellerBalance(ctx, Seller)
		return err
	}
}

// classify buckets an op error: business rejections — Time-Shield
// waits, per-period bid limits, datasets the buyer already owns — are
// the market doing its job and must not trip an error-rate SLO;
// everything else (transport failures, timeouts, internal errors) is a
// real error.
func classify(err error) (isErr, isReject bool) {
	if err == nil {
		return false, false
	}
	var ae *apierr.APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case apierr.CodeBlockedUntil, apierr.CodeBidTooSoon, apierr.CodeAlreadyAcquired:
			return false, true
		}
	}
	return true, false
}

// serverQuantiles pulls the server-side latency estimates for the bid
// path from the rig's registry — the same histograms /metrics exports —
// so reports can cross-check client-measured percentiles against
// server-observed ones.
func serverQuantiles(rig *Rig) map[string]float64 {
	out := map[string]float64{}
	if h, ok := rig.Tel.Registry.FindHistogram("shield_http_request_seconds", "POST /v1/bids", "200"); ok {
		out[`shield_http_request_seconds{route="POST /v1/bids",status="200"} p99`] = h.Quantile(0.99)
		out[`shield_http_request_seconds{route="POST /v1/bids",status="200"} p50`] = h.Quantile(0.50)
	}
	if h, ok := rig.Tel.Registry.FindHistogram("shield_wire_request_seconds", "bid", "ok"); ok {
		out[`shield_wire_request_seconds{op="bid",status="ok"} p99`] = h.Quantile(0.99)
		out[`shield_wire_request_seconds{op="bid",status="ok"} p50`] = h.Quantile(0.50)
	}
	return out
}

// serverStages reads the write-path stage decomposition out of the
// rig's shield_stage_seconds family, one entry per StageClasses class
// the run exercised. This is the server's own answer to "where did the
// bid's latency go" — queue wait vs fsync vs apply — reported next to
// the client-observed percentiles and boundable by SLO clauses like
// bid.fsync.p99<2ms.
func serverStages(rig *Rig) map[string]StageStats {
	out := map[string]StageStats{}
	for class, stage := range StageClasses {
		h, ok := rig.Tel.Registry.FindHistogram("shield_stage_seconds", stage)
		if !ok || h.Count() == 0 {
			continue
		}
		out[class] = StageStats{
			Stage: stage,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	return out
}
