package loadrig

import "github.com/datamarket/shield/internal/rng"

// A Persona is a deterministic bidding disposition a rig worker plays.
// Unlike the full strategies in internal/buyers — which need the
// engine-side posted-price Context the server never reveals to losers —
// personas are pure client-side policies: given the worker's private
// RNG stream they emit the next bid amount. That is exactly what a load
// rig needs: a realistic mix of winning, losing, and shield-triggering
// traffic, reproducible bit-for-bit from the scenario seed.
type Persona struct {
	// Name labels the persona in reports.
	Name string
	// Bid returns the next bid amount. Amounts are on the default
	// catalog's valuation scale (mean ~100), so a freshly seeded engine
	// allocates to aggressive bids and shields lowball ones.
	Bid func(r *rng.RNG) float64
}

// Personas is the rig's persona mix, assigned to workers round-robin so
// every run carries winners, losers, and strategic-looking probers.
var Personas = []Persona{
	{
		// truthful bids a private valuation with small period-to-period
		// noise — the paper's baseline buyer.
		Name: "truthful",
		Bid:  func(r *rng.RNG) float64 { return clampBid(r.Normal(100, 8)) },
	},
	{
		// lowball probes far under valuation, the strategic opening
		// move Time-Shield punishes with waits.
		Name: "lowball",
		Bid:  func(r *rng.RNG) float64 { return clampBid(r.Uniform(5, 45)) },
	},
	{
		// aggressive overbids to acquire quickly, exercising the
		// allocation and settlement path.
		Name: "aggressive",
		Bid:  func(r *rng.RNG) float64 { return clampBid(r.Uniform(110, 160)) },
	},
	{
		// swinger alternates regimes, stressing the engine's posted
		// price with a heavy-tailed mixture.
		Name: "swinger",
		Bid: func(r *rng.RNG) float64 {
			if r.Bool(0.3) {
				return clampBid(r.Uniform(10, 60))
			}
			return clampBid(r.Normal(105, 20))
		},
	},
}

// clampBid keeps amounts positive and finite; the market rejects
// non-positive bids and the rig wants rejections to come from market
// semantics (shield waits), not input validation.
func clampBid(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 1000 {
		return 1000
	}
	return v
}
