package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(99)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical outputs", same)
	}
}

func TestForkDeterministicAndOrderIndependent(t *testing.T) {
	mk := func() *RNG { return New(1234) }

	// Same (state, name) pair yields the same child stream.
	a := mk().Fork("buyer/b01")
	b := mk().Fork("buyer/b01")
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("fork streams diverged at %d: %d != %d", i, av, bv)
		}
	}

	// Forking does not advance the parent: parent output after a fork
	// matches a parent that never forked.
	p1, p2 := mk(), mk()
	p1.Fork("anything")
	p1.Fork("else")
	for i := 0; i < 100; i++ {
		if v1, v2 := p1.Uint64(), p2.Uint64(); v1 != v2 {
			t.Fatalf("fork advanced the parent stream at %d: %d != %d", i, v1, v2)
		}
	}

	// Fork order does not matter: the child keyed by a name is the same
	// whether it is created first or last.
	first := mk().Fork("dataset/d001").Uint64()
	r := mk()
	r.Fork("dataset/d000")
	r.Fork("dataset/d999")
	if got := r.Fork("dataset/d001").Uint64(); got != first {
		t.Fatalf("fork depends on creation order: %d != %d", got, first)
	}
}

func TestForkDistinctNamesDecorrelated(t *testing.T) {
	r := New(5)
	c1 := r.Fork("a")
	c2 := r.Fork("b")
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks %q and %q produced %d/100 identical outputs", "a", "b", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(5, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Laplace(1, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("laplace mean = %v, want ~1", mean)
	}
	// Var(Laplace(mu, b)) = 2 b^2 = 18.
	if math.Abs(variance-18) > 1.5 {
		t.Errorf("laplace variance = %v, want ~18", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(2)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("exponential mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestWeightedIndexRespectsWeights(t *testing.T) {
	r := New(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight-3 / weight-1 draw ratio = %v, want ~3", ratio)
	}
}

func TestWeightedIndexNegativeTreatedAsZero(t *testing.T) {
	r := New(31)
	weights := []float64{-5, 2, -1}
	for i := 0; i < 1000; i++ {
		if got := r.WeightedIndex(weights); got != 1 {
			t.Fatalf("WeightedIndex selected %d with negative weights", got)
		}
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedIndex(%v) did not panic", weights)
				}
			}()
			New(1).WeightedIndex(weights)
		}()
	}
}

func TestUniformRangeProperty(t *testing.T) {
	r := New(37)
	f := func(lo, span float64) bool {
		lo = math.Mod(lo, 1e6)
		span = math.Abs(math.Mod(span, 1e6)) + 1e-9
		v := r.Uniform(lo, lo+span)
		return v >= lo && v < lo+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(41)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < 24000 || trues > 26000 {
		t.Errorf("Bool(0.25) true rate %d/100000, want ~25000", trues)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}
