// Package rng provides a small, deterministic pseudo-random number
// generator with the distribution draws the market simulations need
// (uniform, normal, Laplace, exponential) plus shuffling and weighted
// sampling.
//
// Every stochastic component in this repository takes an explicit *RNG so
// experiments are reproducible bit-for-bit from a seed: nothing in the
// library touches math/rand global state. The core generator is a 64-bit
// permuted congruential generator (PCG-XSH-RR variant on a 64-bit state,
// splitmix64-seeded), which is small, fast, and statistically strong enough
// for simulation work.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
	inc   uint64

	// spare caches the second Box-Muller normal draw.
	spare    float64
	hasSpare bool
}

// New returns an RNG seeded with seed. Distinct seeds yield independent
// looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream derived from seed.
func (r *RNG) Seed(seed uint64) {
	// Run the seed through splitmix64 twice to derive state and stream
	// increment, so consecutive integer seeds do not produce correlated
	// streams.
	s := seed
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // must be odd
	r.hasSpare = false
	r.Uint64() // discard first output, decorrelates low-entropy seeds
}

// Split derives a new, independent RNG from r. The child stream is a
// function of the parent state, and splitting also advances the parent, so
// repeated splits yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Fork derives an independent child stream from r's current state and a
// name, without advancing r: the same (state, name) pair always yields
// the same child, and distinct names yield decorrelated streams. Unlike
// Split, Fork is order-independent — a simulation can hand every actor
// its own stream keyed by the actor's identifier, and the streams do not
// change when actors are created in a different order or when unrelated
// draws are added to the parent.
func (r *RNG) Fork(name string) *RNG {
	// FNV-1a over the name, mixed with the parent state through one
	// splitmix64 round so similar names do not seed correlated streams.
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	s := r.state ^ h
	return New(splitmix64(&s))
}

// Snapshot is the full serializable generator state: restoring it
// continues the stream exactly where it left off.
type Snapshot struct {
	State    uint64  `json:"state"`
	Inc      uint64  `json:"inc"`
	Spare    float64 `json:"spare"`
	HasSpare bool    `json:"has_spare"`
}

// Snapshot captures the generator state.
func (r *RNG) Snapshot() Snapshot {
	return Snapshot{State: r.state, Inc: r.inc, Spare: r.spare, HasSpare: r.hasSpare}
}

// Restore reconstructs a generator from a snapshot. The increment is
// forced odd (the PCG stream parameter requirement) in case the snapshot
// was hand-edited.
func Restore(s Snapshot) *RNG {
	return &RNG{state: s.State, inc: s.Inc | 1, spare: s.Spare, hasSpare: s.HasSpare}
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 bits from the stream.
func (r *RNG) Uint64() uint64 {
	// Two dependent 32-bit PCG outputs glued together keep the state small
	// while providing 64 output bits per call.
	hi := r.next32()
	lo := r.next32()
	return uint64(hi)<<32 | uint64(lo)
}

// next32 is PCG-XSH-RR: 64 bits of LCG state, 32 bits out.
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation on 32-bit words is
	// overkill here; simple rejection keeps the result exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound // = 2^64 mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, via the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	factor := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * factor
	r.hasSpare = true
	return mean + stddev*u*factor
}

// Laplace returns a draw from the Laplace distribution with location mu and
// scale b, used by the differential-privacy pricing mechanism.
func (r *RNG) Laplace(mu, b float64) float64 {
	u := r.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Exponential returns a draw from the exponential distribution with the
// given rate (lambda > 0).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential called with rate <= 0")
	}
	u := r.Float64()
	// Guard u == 0: Log(0) is -Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// ShuffleFloat64s shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleFloat64s(s []float64) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// WeightedIndex samples an index with probability proportional to
// weights[i]. Negative weights are treated as zero. It panics if the
// weights sum to zero or the slice is empty.
func (r *RNG) WeightedIndex(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedIndex with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: WeightedIndex with non-positive total weight")
	}
	target := r.Float64() * total
	var acc float64
	last := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if target < acc {
			return i
		}
	}
	// Floating point accumulation can leave target == acc; return the last
	// positive-weight index.
	return last
}
