package journal

import (
	"fmt"

	"github.com/datamarket/shield/internal/command"
)

// CommandFromEvent upgrades one journal record to the typed command it
// recorded. It is total over every body op ever written — version-0
// logs (PR-1/PR-2 era) and current logs share record shapes, so one
// upgrader serves both. Head records (genesis, snapshot) carry state,
// not commands, and fail with ErrDoubleStart, matching what a mid-log
// head has always meant; an unrecognized op fails with ErrBadEvent.
func CommandFromEvent(e Event) (command.Command, error) {
	switch e.Op {
	case OpRegisterBuyer:
		return command.RegisterBuyer{Buyer: command.BuyerID(e.Buyer)}, nil
	case OpRegisterSeller:
		return command.RegisterSeller{Seller: command.SellerID(e.Seller)}, nil
	case OpUpload:
		return command.UploadDataset{Seller: command.SellerID(e.Seller), Dataset: command.DatasetID(e.Dataset)}, nil
	case OpCompose:
		parts := make([]command.DatasetID, len(e.Constituents))
		for i, c := range e.Constituents {
			parts[i] = command.DatasetID(c)
		}
		return command.ComposeDataset{Dataset: command.DatasetID(e.Dataset), Constituents: parts}, nil
	case OpWithdraw:
		return command.WithdrawDataset{Seller: command.SellerID(e.Seller), Dataset: command.DatasetID(e.Dataset)}, nil
	case OpBid:
		return command.SubmitBid{Buyer: command.BuyerID(e.Buyer), Dataset: command.DatasetID(e.Dataset), Amount: e.Amount}, nil
	case OpBidBatch:
		bids := make([]command.SubmitBid, len(e.Bids))
		for i, b := range e.Bids {
			bids[i] = command.SubmitBid{Buyer: command.BuyerID(b.Buyer), Dataset: command.DatasetID(b.Dataset), Amount: b.Amount}
		}
		return command.BidBatch{Bids: bids}, nil
	case OpTick:
		return command.Tick{}, nil
	case OpGenesis, OpSnapshot:
		return nil, ErrDoubleStart
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrBadEvent, e.Op)
	}
}

// EventFromCommand encodes a command as the journal record that
// replays it, the inverse of CommandFromEvent (modulo Seq and Trace,
// which the writer and request context own). Head records have no
// command form, and Settle is settled off-market (the ex-post layer
// journals nothing), so only market-state commands encode; anything
// else fails with ErrBadEvent.
func EventFromCommand(cmd command.Command) (Event, error) {
	switch c := cmd.(type) {
	case command.RegisterBuyer:
		return Event{Op: OpRegisterBuyer, Buyer: string(c.Buyer)}, nil
	case command.RegisterSeller:
		return Event{Op: OpRegisterSeller, Seller: string(c.Seller)}, nil
	case command.UploadDataset:
		return Event{Op: OpUpload, Seller: string(c.Seller), Dataset: string(c.Dataset)}, nil
	case command.ComposeDataset:
		parts := make([]string, len(c.Constituents))
		for i, p := range c.Constituents {
			parts[i] = string(p)
		}
		return Event{Op: OpCompose, Dataset: string(c.Dataset), Constituents: parts}, nil
	case command.WithdrawDataset:
		return Event{Op: OpWithdraw, Seller: string(c.Seller), Dataset: string(c.Dataset)}, nil
	case command.SubmitBid:
		return Event{Op: OpBid, Buyer: string(c.Buyer), Dataset: string(c.Dataset), Amount: c.Amount}, nil
	case command.BidBatch:
		bids := make([]BatchBid, len(c.Bids))
		for i, b := range c.Bids {
			bids[i] = BatchBid{Buyer: string(b.Buyer), Dataset: string(b.Dataset), Amount: b.Amount}
		}
		return Event{Op: OpBidBatch, Bids: bids}, nil
	case command.Tick:
		return Event{Op: OpTick}, nil
	default:
		return Event{}, fmt.Errorf("%w: no journal encoding for command %q", ErrBadEvent, cmd.Op())
	}
}
