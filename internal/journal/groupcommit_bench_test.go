package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// benchSink opens a real file so the fsync in these benchmarks is an
// honest one — the per-record vs group-commit comparison is exactly the
// fsync amortization BENCH_6.json tracks.
func benchSink(b *testing.B) *os.File {
	b.Helper()
	f, err := os.Create(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

func benchWriter(b *testing.B, opts ...Option) *Writer {
	b.Helper()
	w := NewWriter(benchSink(b), opts...)
	if err := w.Genesis(testConfig()); err != nil {
		b.Fatal(err)
	}
	return w
}

var benchBid = Event{Op: OpBid, Buyer: "b", Dataset: "d", Amount: 42}

// BenchmarkBidAppendFsyncPerRecord is the PR-2 baseline: one bid record,
// one Write, one fsync, sequentially.
func BenchmarkBidAppendFsyncPerRecord(b *testing.B) {
	w := benchWriter(b, WithFsync())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchBid); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBidAppendFsyncGroupCommit is the same durability contract
// (ack after fsync) under group commit with concurrent appenders: the
// flush cost amortizes across every record that piles onto a group.
func BenchmarkBidAppendFsyncGroupCommit(b *testing.B) {
	w := benchWriter(b, WithFsync(), WithGroupCommit(0))
	b.ReportAllocs()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := w.Append(benchBid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if w.groups > 0 {
		b.ReportMetric(float64(b.N)/float64(w.groups), "records/group")
	}
}

// BenchmarkBidAppendFsyncGroupCommitWindow adds the 500µs commit window
// marketd exposes as -group-commit-window, with the same parallel load.
func BenchmarkBidAppendFsyncGroupCommitWindow(b *testing.B) {
	w := benchWriter(b, WithFsync(), WithGroupCommit(500*time.Microsecond))
	b.ReportAllocs()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := w.Append(benchBid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if w.groups > 0 {
		b.ReportMetric(float64(b.N)/float64(w.groups), "records/group")
	}
}
