package journal

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/obs"
)

// TestGroupCommitStageSpans pins the grouped write path's stage
// decomposition: a sampled leader's trace carries
// group_commit.queue_wait, group_commit.append and group_commit.fsync
// spans, the same stages land on shield_stage_seconds with the
// request's ID as a bucket exemplar, and the leader-wait histogram
// counts one observation per group.
func TestGroupCommitStageSpans(t *testing.T) {
	tel := obs.NewTelemetry() // sampling 1: every request records spans
	var sink syncBuffer
	w := NewWriter(&sink, WithFsync(), WithGroupCommit(0), WithTelemetry(tel))
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}

	id := tel.Tracer.NewRequestID()
	tr := tel.Tracer.Begin(id, "bid")
	ctx := obs.WithTrace(obs.WithRequestID(context.Background(), id), tr)
	if err := w.AppendCtx(ctx, Event{Op: OpRegisterBuyer, Buyer: "b"}); err != nil {
		t.Fatal(err)
	}
	tel.Tracer.Finish(tr)

	snap, ok := tel.Tracer.Find(id)
	if !ok {
		t.Fatal("trace not in ring")
	}
	got := map[string]bool{}
	for _, s := range snap.Spans {
		got[s.Name] = true
	}
	for _, want := range []string{"group_commit.queue_wait", "group_commit.append", "group_commit.fsync"} {
		if !got[want] {
			t.Fatalf("leader trace spans %v missing %q", snap.Spans, want)
		}
	}

	// Stage histograms observed the same stages, exemplar-stamped.
	for _, stage := range []string{"group_commit.queue_wait", "group_commit.append", "group_commit.fsync"} {
		h, ok := tel.Registry.FindHistogram("shield_stage_seconds", stage)
		if !ok || h.Count() == 0 {
			t.Fatalf("stage %q has no observations", stage)
		}
		found := false
		for i := 0; i <= len(obs.LatencyBuckets()); i++ {
			if e := h.BucketExemplar(i); e != nil && e.TraceID == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stage %q carries no exemplar for %s", stage, id)
		}
	}

	lw, ok := tel.Registry.FindHistogram("shield_journal_group_leader_wait_seconds")
	if !ok || lw.Count() != 1 {
		t.Fatalf("leader-wait histogram count = %v, want 1", lw)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFollowerSeesQueueWait drives two concurrent appends
// through one window so one rides the other's flush, and checks the
// follower's trace carries only its queue wait — the flush spans belong
// to the leader.
func TestGroupCommitFollowerSeesQueueWait(t *testing.T) {
	tel := obs.NewTelemetry()
	var sink syncBuffer
	w := NewWriter(&sink, WithFsync(), WithGroupCommit(20*time.Millisecond), WithTelemetry(tel))
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 2)
	var wg sync.WaitGroup
	for i := range ids {
		ids[i] = tel.Tracer.NewRequestID()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := tel.Tracer.Begin(ids[i], "bid")
			ctx := obs.WithTrace(obs.WithRequestID(context.Background(), ids[i]), tr)
			if err := w.AppendCtx(ctx, Event{Op: OpRegisterBuyer, Buyer: ids[i]}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
			tel.Tracer.Finish(tr)
		}(i)
		// Stagger so the second append lands inside the first's window.
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if w.maxGroup < 2 {
		t.Skip("appends did not share a group; timing too coarse on this machine")
	}

	leaders, followers := 0, 0
	for _, id := range ids {
		snap, ok := tel.Tracer.Find(id)
		if !ok {
			t.Fatalf("trace %s not in ring", id)
		}
		names := map[string]bool{}
		for _, s := range snap.Spans {
			names[s.Name] = true
		}
		if !names["group_commit.queue_wait"] {
			t.Fatalf("trace %s spans %v missing queue wait", id, snap.Spans)
		}
		if names["group_commit.append"] {
			leaders++
		} else {
			followers++
		}
	}
	if leaders != 1 || followers != 1 {
		t.Fatalf("got %d leaders and %d followers, want exactly one of each", leaders, followers)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
