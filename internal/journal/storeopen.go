// Opening and recovering segmented stores: directory listing, the
// bounded-tail recovery walk, the leader-mode OpenStore constructor,
// the replica-mode store a follower persists through, and the
// read-only inspection used by `marketctl journal-info` and /readyz.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/datamarket/shield/internal/market"
)

// dirListing is the raw contents of a store directory.
type dirListing struct {
	segIdx   []int64 // ascending
	ckptSeqs []int64 // ascending
	tmps     []string
}

func listStoreDir(dir string) (*dirListing, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var l dirListing
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, segSuffix):
			n, err := strconv.ParseInt(strings.TrimSuffix(name, segSuffix), 10, 64)
			if err != nil {
				continue // not ours
			}
			l.segIdx = append(l.segIdx, n)
		case strings.HasSuffix(name, ckptSuffix):
			n, err := strconv.ParseInt(strings.TrimSuffix(name, ckptSuffix), 10, 64)
			if err != nil {
				continue
			}
			l.ckptSeqs = append(l.ckptSeqs, n)
		case strings.HasSuffix(name, tmpSuffix):
			l.tmps = append(l.tmps, name)
		}
	}
	sort.Slice(l.segIdx, func(i, j int) bool { return l.segIdx[i] < l.segIdx[j] })
	sort.Slice(l.ckptSeqs, func(i, j int) bool { return l.ckptSeqs[i] < l.ckptSeqs[j] })
	return &l, nil
}

// readSegHead reads and validates a segment's first line. A missing or
// newline-less first line is reported as torn (legal only for the
// final segment, whose seghead write may have been cut mid-rotation);
// any parse failure is corruption.
func readSegHead(dir string, index int64) (head segHead, headLen int64, torn bool, err error) {
	name := segName(index)
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return segHead{}, 0, false, err
	}
	defer f.Close()
	line, rerr := bufio.NewReader(f).ReadBytes('\n')
	if rerr == io.EOF {
		return segHead{}, 0, true, nil // empty or torn seghead
	}
	if rerr != nil {
		return segHead{}, 0, false, rerr
	}
	if uerr := json.Unmarshal(line, &head); uerr != nil || head.Op != opSegHead {
		return segHead{}, 0, false, fmt.Errorf("%w: %s has no seghead", ErrStoreCorrupt, name)
	}
	if head.V != FormatVersion {
		return segHead{}, 0, false, fmt.Errorf("%w: segment %s has version %d (this build writes %d)", ErrVersion, name, head.V, FormatVersion)
	}
	if head.Index != index {
		return segHead{}, 0, false, fmt.Errorf("%w: %s claims index %d", ErrStoreCorrupt, name, head.Index)
	}
	return head, int64(len(line)), false, nil
}

// storeState is what recovery learned about a directory.
type storeState struct {
	m        *market.Market // nil when the store holds no durable state
	lastSeq  int64
	replayed int // records streamed through Apply — the bounded tail
	segs     []segMeta
	ckpts    []int64
	lastCkpt int64

	// Tail repair instructions (applied by OpenStore, reported only by
	// read-only recovery).
	torn      bool  // final segment has a torn trailing record
	durable   int64 // byte length of the final segment's durable prefix
	resetTail bool  // final segment unusable: recreate with tailBase
	tailBase  int64
}

// recoverStoreDir performs the bounded-tail recovery walk. readonly
// recoveries (inspection, benchmarks, post-run invariant checks) leave
// the directory untouched; writable ones remove stray tmp files, and
// the caller applies the tail-repair instructions.
func recoverStoreDir(dir string, readonly bool) (*storeState, error) {
	l, err := listStoreDir(dir)
	if err != nil {
		return nil, err
	}
	if !readonly {
		for _, tmp := range l.tmps {
			os.Remove(filepath.Join(dir, tmp))
		}
	}
	st := &storeState{ckpts: l.ckptSeqs}
	if len(l.segIdx) == 0 {
		return st, nil
	}
	for i := 1; i < len(l.segIdx); i++ {
		if l.segIdx[i] != l.segIdx[i-1]+1 {
			return nil, fmt.Errorf("%w: %s (chain jumps %s to %s)", ErrSegmentMissing,
				segName(l.segIdx[i-1]+1), segName(l.segIdx[i-1]), segName(l.segIdx[i]))
		}
	}

	// Newest decodable checkpoint seeds the market. Checkpoints are
	// written atomically, so a present-but-undecodable one is
	// corruption, not a crash artifact.
	if n := len(l.ckptSeqs); n > 0 {
		ck, err := readCheckpointFile(dir, l.ckptSeqs[n-1])
		if err != nil {
			return nil, err
		}
		st.lastCkpt = ck.Seq
		st.m, err = market.RestoreSnapshot(ck.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("journal: checkpoint %s: %w", ckptName(ck.Seq), err)
		}
		st.lastSeq = ck.Seq
	}

	// Read every seghead up front: base chaining is what lets recovery
	// skip a sealed segment's body entirely.
	last := len(l.segIdx) - 1
	heads := make([]segHead, len(l.segIdx))
	headLens := make([]int64, len(l.segIdx))
	for i, idx := range l.segIdx {
		head, headLen, torn, err := readSegHead(dir, idx)
		if err != nil {
			return nil, err
		}
		if torn {
			if i != last {
				return nil, fmt.Errorf("%w: sealed segment %s has a torn seghead", ErrStoreCorrupt, segName(idx))
			}
			// Crash mid-rotation: the final segment exists but its
			// seghead never landed. Rebuild it empty; its base is the
			// seq after everything the previous segments hold.
			st.resetTail = true
			heads = heads[:last]
			headLens = headLens[:last]
			break
		}
		if i > 0 && head.Base <= heads[i-1].Base {
			return nil, fmt.Errorf("%w: segment %s base %d does not advance past %s base %d",
				ErrStoreCorrupt, segName(idx), head.Base, segName(l.segIdx[i-1]), heads[i-1].Base)
		}
		heads[i] = head
		headLens[i] = headLen
	}

	// The oldest segment must reach back to the checkpoint: its base
	// may be at most lastCkpt+1, or replay has a hole. This is the
	// deleted-segment canary's trip wire when the chain is still
	// contiguous but its head was cut off.
	if len(heads) > 0 {
		if first := heads[0]; first.Base > st.lastCkpt+1 {
			return nil, fmt.Errorf("%w: %s (recovery needs seq %d, oldest segment %s starts at %d)",
				ErrSegmentMissing, segName(l.segIdx[0]-1), st.lastCkpt+1, segName(l.segIdx[0]), first.Base)
		}
	}

	prevEnd := int64(0) // maxSeq of the previous segment, once known
	for i := range heads {
		seg := segMeta{index: l.segIdx[i], base: heads[i].Base}
		if fi, err := os.Stat(filepath.Join(dir, segName(seg.index))); err == nil {
			seg.bytes = fi.Size()
		}
		if i > 0 && seg.base != prevEnd+1 {
			// A forward jump is legal only when a checkpoint covers the
			// hole: a no-fsync crash can lose records the checkpoint
			// already captured, and the tail reset that repairs it
			// starts the next segment at checkpoint+1.
			if seg.base < prevEnd+1 || seg.base > st.lastCkpt+1 {
				return nil, fmt.Errorf("%w: segment %s base %d, want %d", ErrStoreCorrupt, segName(seg.index), seg.base, prevEnd+1)
			}
		}
		// A sealed segment's record count comes from the next seghead;
		// skip its body when the checkpoint covers it.
		if i < len(heads)-1 {
			seg.records = heads[i+1].Base - seg.base
			prevEnd = seg.maxSeq()
			if seg.maxSeq() <= st.lastCkpt {
				st.segs = append(st.segs, seg)
				continue
			}
		}
		final := i == len(heads)-1 && !st.resetTail
		var segTorn bool
		var segDurable int64
		err := func() error {
			f, err := os.Open(filepath.Join(dir, segName(seg.index)))
			if err != nil {
				return err
			}
			defer f.Close()
			br := bufio.NewReader(f)
			if _, err := br.ReadBytes('\n'); err != nil {
				return err
			}
			n := int64(0)
			durable, torn, err := Scan(br, seg.base, func(e Event) error {
				n++
				if e.Seq <= st.lastCkpt {
					return nil // already inside the checkpoint
				}
				if st.m == nil {
					m, herr := marketFromHead(e)
					if herr != nil {
						return herr
					}
					st.m = m
				} else if aerr := applyEvent(st.m, e); aerr != nil {
					return aerr
				}
				st.replayed++
				return nil
			})
			if err != nil {
				return err
			}
			if torn && !final {
				return fmt.Errorf("%w: sealed segment %s has a torn tail", ErrStoreCorrupt, segName(seg.index))
			}
			segTorn, segDurable = torn, headLens[i]+durable
			if i < len(heads)-1 && n != seg.records {
				return fmt.Errorf("%w: segment %s holds %d records, next seghead implies %d",
					ErrStoreCorrupt, segName(seg.index), n, seg.records)
			}
			seg.records = n
			return nil
		}()
		if err != nil {
			return nil, err
		}
		if seg.records > 0 {
			st.lastSeq = seg.maxSeq()
		}
		prevEnd = seg.maxSeq()
		if final {
			st.torn, st.durable = segTorn, segDurable
		}
		st.segs = append(st.segs, seg)
	}
	if st.lastSeq < st.lastCkpt {
		// The checkpoint outran the surviving records (no-fsync mode
		// crash): the checkpoint is the newest durable truth, and the
		// tail segment's stale records are already inside it.
		st.lastSeq = st.lastCkpt
		st.resetTail = true
	}
	if st.resetTail {
		st.tailBase = st.lastSeq + 1
	}
	return st, nil
}

// OpenStore creates or recovers a segmented journaled market in dir.
// On recovery it restores the newest checkpoint and replays only the
// tail segments — cost is O(records since last checkpoint), not
// O(history) — then resumes appending into the final segment. A torn
// trailing record is truncated away and the repair fsynced; a segment
// cut mid-rotation is rebuilt. The directory's own genesis wins over
// cfg, exactly like OpenFile. It returns the number of tail records
// replayed.
func OpenStore(cfg market.Config, dir string, sc StoreConfig, opts ...Option) (*Market, int, error) {
	sc.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	if sc.MigrateFlat != "" {
		if err := migrateFlatFile(dir, sc.MigrateFlat); err != nil {
			return nil, 0, err
		}
	}
	st, err := recoverStoreDir(dir, false)
	if err != nil {
		return nil, 0, err
	}

	s := &Store{dir: dir, sc: sc, segs: st.segs, ckpts: st.ckpts, lastCkpt: st.lastCkpt}
	if st.m == nil {
		// Nothing durable (fresh directory, or a crash before the very
		// first record survived): start a store from scratch. Any
		// broken segment 0 is rebuilt in place.
		live, err := market.New(cfg)
		if err != nil {
			return nil, 0, err
		}
		f, headLen, err := createSegment(dir, 0, 1, len(st.segs) > 0 || st.resetTail)
		if err != nil {
			return nil, 0, err
		}
		s.segs = []segMeta{{index: 0, base: 1, bytes: headLen}}
		s.active = f
		w := NewWriter(s, opts...)
		w.OnCommit(s.commit)
		if err := w.Genesis(cfg); err != nil {
			s.Close()
			return nil, 0, err
		}
		return &Market{Market: live, w: w, sink: s, store: s}, 0, nil
	}

	// Tail repair, then resume appending into the final segment.
	if err := s.attachTail(st); err != nil {
		return nil, 0, err
	}

	// The store's shadow must independently track the live market for
	// checkpointing; clone the recovered state once.
	shadow, err := market.RestoreSnapshot(st.m.Snapshot())
	if err != nil {
		return nil, 0, err
	}
	s.shadow = shadow
	s.appliedSeq = st.lastSeq
	s.sinceCkpt = st.lastSeq - st.lastCkpt // keep the cadence across restarts

	w := NewWriter(s, opts...)
	w.started = true
	w.seq = st.lastSeq
	w.OnCommit(s.commit)
	return &Market{Market: st.m, w: w, sink: s, store: s}, st.replayed, nil
}

// attachTail repairs the recovered chain's final segment and opens it
// for appending: a torn trailing record is truncated away (the repair
// fsynced, file then directory), a segment cut mid-rotation is rebuilt
// in place, and a checkpoint that outran the surviving records gets a
// fresh segment starting at checkpoint+1.
func (s *Store) attachTail(st *storeState) error {
	if st.resetTail {
		idx := segIndexAfter(st.segs)
		f, headLen, err := createSegment(s.dir, idx, st.tailBase, false)
		if errors.Is(err, os.ErrExist) {
			f, headLen, err = createSegment(s.dir, idx, st.tailBase, true)
		}
		if err != nil {
			return err
		}
		s.segs = append(st.segs, segMeta{index: idx, base: st.tailBase, bytes: headLen})
		s.active = f
		return nil
	}
	tail := &s.segs[len(s.segs)-1]
	if st.torn {
		path := filepath.Join(s.dir, segName(tail.index))
		if err := repairTornTail(path, st.durable); err != nil {
			return err
		}
		tail.bytes = st.durable
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segName(tail.index)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	return nil
}

// segIndexAfter returns the index the next segment should use given
// the surviving chain (0 for an empty chain).
func segIndexAfter(segs []segMeta) int64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].index + 1
}

// migrateFlatFile absorbs a flat journal as segment 0 of an empty
// store: a seghead line followed by the flat log's durable bytes,
// verbatim — v0 records included, so a pre-versioning log replays
// byte-identically inside the store. The segment lands atomically
// (temp+rename+dir-fsync); the flat file is left untouched. A
// directory that already holds segments is already migrated: no-op.
func migrateFlatFile(dir, flat string) error {
	l, err := listStoreDir(dir)
	if err != nil {
		return err
	}
	if len(l.segIdx) > 0 {
		return nil
	}
	info, err := os.Stat(flat)
	if os.IsNotExist(err) {
		return nil // nothing to migrate
	}
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		return nil
	}
	f, err := os.Open(flat)
	if err != nil {
		return err
	}
	// Validate and find the durable prefix; a torn tail in the flat
	// log is dropped here, exactly as OpenFile would.
	durable, _, err := Scan(bufio.NewReader(f), 1, func(Event) error { return nil })
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: migrating %s: %w", flat, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	tmp, err := os.CreateTemp(dir, "migrate-*"+tmpSuffix)
	if err != nil {
		f.Close()
		return err
	}
	head, _ := json.Marshal(segHead{Op: opSegHead, V: FormatVersion, Base: 1, Index: 0})
	if _, err = tmp.Write(append(head, '\n')); err == nil {
		_, err = io.Copy(tmp, io.LimitReader(f, durable))
	}
	f.Close()
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, segName(0))); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// RecoverDir rebuilds the market a store directory describes without
// touching the directory: read-only recovery for inspection,
// benchmarks, and post-run invariant checks. It returns the market,
// the seq of its newest record, and how many tail records were
// replayed past the checkpoint.
func RecoverDir(dir string) (*market.Market, int64, int, error) {
	st, err := recoverStoreDir(dir, true)
	if err != nil {
		return nil, 0, 0, err
	}
	if st.m == nil {
		return nil, 0, 0, ErrNoGenesis
	}
	return st.m, st.lastSeq, st.replayed, nil
}
