package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/datamarket/shield/internal/faultfs"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
)

// workloadOpts configures driveSeededWorkload.
type workloadOpts struct {
	ops int
	// allowCompact lets the workload compact its own log mid-stream
	// (sink must then be a *bytes.Buffer).
	allowCompact bool
	// strict makes harness plumbing failures (genesis, compaction,
	// close during compaction) fatal. Fault-injection runs turn it off:
	// there, journal errors are the point.
	strict bool
}

// driveSeededWorkload applies a deterministic mixed workload — seller
// and buyer registrations, uploads, compositions, single and batch
// bids, ticks, withdrawals, and (optionally) compactions — to a fresh
// journaling market writing to sink. Every random choice derives from
// seed, and the market itself is deterministic, so the same seed always
// produces the same operation sequence and the same journal bytes.
// Individual market operations may fail (waits, rebuys, withdrawn
// datasets, poisoned journals); failures are tolerated and, by the
// journal's contract, never logged.
func driveSeededWorkload(t *testing.T, cfg market.Config, seed uint64, sink io.Writer, o workloadOpts) *Market {
	t.Helper()
	m, err := NewMarket(cfg, sink)
	if err != nil {
		if o.strict {
			t.Fatalf("seed %d: genesis: %v", seed, err)
		}
		return nil
	}
	r := rng.New(seed)
	var (
		sellers             []market.SellerID
		buyers              []market.BuyerID
		datasets            []market.DatasetID
		nUploads, nComposed int
	)
	addSeller := func() {
		id := market.SellerID(fmt.Sprintf("s%d", len(sellers)))
		if m.RegisterSeller(id) == nil {
			sellers = append(sellers, id)
		}
	}
	addBuyer := func() {
		id := market.BuyerID(fmt.Sprintf("b%d", len(buyers)))
		if m.RegisterBuyer(id) == nil {
			buyers = append(buyers, id)
		}
	}
	upload := func() {
		if len(sellers) == 0 {
			return
		}
		id := market.DatasetID(fmt.Sprintf("d%d", nUploads))
		nUploads++
		if m.UploadDataset(sellers[r.Intn(len(sellers))], id) == nil {
			datasets = append(datasets, id)
		}
	}
	// Seed the market so every op kind is reachable from the start.
	addSeller()
	addBuyer()
	upload()

	for op := 0; op < o.ops; op++ {
		switch r.Intn(12) {
		case 0:
			addSeller()
		case 1:
			addBuyer()
		case 2, 3:
			upload()
		case 4: // compose a derived dataset from two distinct existing ones
			if len(datasets) >= 2 {
				a := datasets[r.Intn(len(datasets))]
				b := datasets[r.Intn(len(datasets))]
				if a != b {
					id := market.DatasetID(fmt.Sprintf("c%d", nComposed))
					nComposed++
					if m.ComposeDataset(id, a, b) == nil {
						datasets = append(datasets, id)
					}
				}
			}
		case 5, 6, 7: // single bid
			if len(buyers) > 0 && len(datasets) > 0 {
				m.SubmitBid(buyers[r.Intn(len(buyers))],
					datasets[r.Intn(len(datasets))], r.Uniform(1, 150))
			}
		case 8: // batch bid, occasionally including a doomed entry
			if len(buyers) > 0 && len(datasets) > 0 {
				n := 2 + r.Intn(4)
				reqs := make([]market.BidRequest, 0, n)
				for i := 0; i < n; i++ {
					buyer := buyers[r.Intn(len(buyers))]
					if r.Bool(0.1) {
						buyer = "ghost" // rejected, must not be journaled
					}
					reqs = append(reqs, market.BidRequest{
						Buyer:   buyer,
						Dataset: datasets[r.Intn(len(datasets))],
						Amount:  r.Uniform(1, 150),
					})
				}
				m.SubmitBids(reqs)
			}
		case 9:
			m.Tick()
		case 10: // withdraw a base dataset (fails while composed-upon; fine)
			if len(datasets) > 0 && len(sellers) > 0 {
				m.WithdrawDataset(sellers[r.Intn(len(sellers))],
					datasets[r.Intn(len(datasets))])
			}
		case 11: // compact the log in place and resume on the snapshot head
			if !o.allowCompact || !r.Bool(0.3) {
				continue
			}
			buf := sink.(*bytes.Buffer)
			if err := m.Close(); err != nil && o.strict {
				t.Fatalf("seed %d: close before compact: %v", seed, err)
			}
			var nb bytes.Buffer
			if err := Compact(bytes.NewReader(buf.Bytes()), &nb); err != nil {
				if o.strict {
					t.Fatalf("seed %d: compact: %v", seed, err)
				}
				return m
			}
			restored, err := Restore(bytes.NewReader(nb.Bytes()))
			if err != nil {
				if o.strict {
					t.Fatalf("seed %d: restore after compact: %v", seed, err)
				}
				return m
			}
			buf.Reset()
			buf.Write(nb.Bytes())
			m = Resume(restored, buf, 1)
		}
	}
	return m
}

// recordBoundaries returns the byte offset just past each record of a
// journal (records are newline-terminated).
func recordBoundaries(log []byte) []int {
	var bounds []int
	for i, b := range log {
		if b == '\n' {
			bounds = append(bounds, i+1)
		}
	}
	return bounds
}

// TestCrashRecoveryPrefixConsistency is the crash-recovery property
// harness: for many seeds it runs the random workload, then simulates a
// crash at every record boundary and at sampled intra-record byte
// offsets, restores from the surviving prefix, and asserts the
// recovered market snapshot equals the snapshot of the longest durable
// prefix of complete records. A crash may lose the in-flight record —
// never anything acknowledged before it, and never recoverability.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	const seeds = 24
	for s := 0; s < seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			m := driveSeededWorkload(t, testConfig(), seed, &buf,
				workloadOpts{ops: 60, allowCompact: true, strict: true})
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			log := append([]byte(nil), buf.Bytes()...)
			bounds := recordBoundaries(log)
			if len(bounds) < 2 { // a late compaction legitimately shrinks the log
				t.Fatalf("workload produced only %d records", len(bounds))
			}
			events, err := Read(bytes.NewReader(log))
			if err != nil {
				t.Fatal(err)
			}
			if len(events) != len(bounds) {
				t.Fatalf("parsed %d events across %d records", len(events), len(bounds))
			}
			// Reference state after each durable prefix of k complete records.
			want := make([]market.Snapshot, len(bounds)+1)
			for k := 1; k <= len(bounds); k++ {
				pm, err := Bootstrap(events[:k])
				if err != nil {
					t.Fatalf("bootstrap of %d-event prefix: %v", k, err)
				}
				want[k] = pm.Snapshot()
			}
			check := func(cut, k int, label string) {
				t.Helper()
				got, err := Restore(bytes.NewReader(log[:cut]))
				if k == 0 {
					// Not even the head survived: recovery must say so,
					// not fabricate state.
					if !errors.Is(err, ErrNoGenesis) {
						t.Fatalf("%s: want ErrNoGenesis, got %v", label, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("%s: restore: %v", label, err)
				}
				if d := got.Snapshot().Diff(want[k]); d != "" {
					t.Fatalf("%s: %s", label, d)
				}
			}
			// Crash at every record boundary: all k records survive.
			for k, b := range bounds {
				check(b, k+1, fmt.Sprintf("boundary after record %d", k+1))
			}
			// Crash inside records (torn tail): record k+1 is lost, the
			// first k survive. Offsets are sampled, seeded.
			r := rng.New(seed ^ 0x9e3779b97f4a7c15)
			prev := 0
			for k, b := range bounds {
				if b-prev > 1 {
					for i := 0; i < 2; i++ {
						cut := prev + 1 + r.Intn(b-prev-1)
						check(cut, k, fmt.Sprintf("record %d torn at byte %d", k+1, cut))
					}
				}
				prev = b
			}
		})
	}
}

// TestCrashRecoveryFaultInjection kills the live write stream itself
// with seeded faultfs writers — silent truncation, torn writes, hard
// errors — instead of slicing bytes after the fact, and asserts the
// same prefix-consistency property over whatever the "disk" retained.
func TestCrashRecoveryFaultInjection(t *testing.T) {
	const seeds = 12
	for s := 0; s < seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			opts := workloadOpts{ops: 40}
			// Ground truth: the same workload against a fault-free sink.
			var clean bytes.Buffer
			m := driveSeededWorkload(t, testConfig(), seed, &clean,
				workloadOpts{ops: opts.ops, strict: true})
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			cleanLog := clean.Bytes()
			events, err := Read(bytes.NewReader(cleanLog))
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				var disk bytes.Buffer
				fw := faultfs.NewSeeded(&disk, seed*101+uint64(trial)+1, int64(len(cleanLog)))
				fm := driveSeededWorkload(t, testConfig(), seed, fw, opts)
				if fm != nil {
					fm.Close() // may fail: the sink is dead
				}
				durable := disk.Bytes()
				label := fmt.Sprintf("trial %d (%v fault): %d durable bytes",
					trial, fw.Kind(), len(durable))
				// The fault can only shorten the stream, never corrupt
				// or reorder what was already written.
				if !bytes.HasPrefix(cleanLog, durable) {
					t.Fatalf("%s: durable bytes are not a prefix of the fault-free log", label)
				}
				k := bytes.Count(durable, []byte("\n"))
				got, err := Restore(bytes.NewReader(durable))
				if k == 0 {
					if !errors.Is(err, ErrNoGenesis) {
						t.Fatalf("%s: want ErrNoGenesis, got %v", label, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: restore: %v", label, err)
				}
				wantM, err := Bootstrap(events[:k])
				if err != nil {
					t.Fatalf("%s: bootstrap prefix: %v", label, err)
				}
				if d := got.Snapshot().Diff(wantM.Snapshot()); d != "" {
					t.Fatalf("%s: %s", label, d)
				}
			}
		})
	}
}

// TestOpenFileTruncatesTornTail proves the restart path end-to-end: a
// journal file with a torn final record reopens, drops exactly the torn
// record, truncates the file back to the durable prefix, and appends
// cleanly from there.
func TestOpenFileTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.log")
	jm, _, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []error{
		jm.RegisterSeller("s"),
		jm.UploadDataset("s", "d"),
		jm.RegisterBuyer("b"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	if _, err := jm.SubmitBid("b", "d", 90); err != nil {
		t.Fatal(err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(data)
	durable := bounds[len(bounds)-2] // last complete boundary after the tear
	// Tear the final record (the bid) seven bytes short of its newline.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	jm2, replayed, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatalf("reopening torn journal: %v", err)
	}
	if replayed != len(bounds)-2 { // events minus genesis minus the torn record
		t.Fatalf("replayed %d events, want %d", replayed, len(bounds)-2)
	}
	if owned, _ := jm2.Owns("b", "d"); owned {
		t.Fatal("torn bid record survived recovery")
	}
	// The file itself was repaired before appends resumed.
	if info, err := os.Stat(path); err != nil || info.Size() != int64(durable) {
		t.Fatalf("file size after recovery = %v (err %v), want %d", info.Size(), err, durable)
	}
	if err := jm2.RegisterBuyer("late"); err != nil {
		t.Fatal(err)
	}
	if err := jm2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Restore(mustOpen(t, path))
	if err != nil {
		t.Fatalf("journal corrupt after torn-tail recovery + append: %v", err)
	}
	if _, err := final.BuyerSpend("late"); err != nil {
		t.Fatalf("post-recovery append lost: %v", err)
	}
}

// TestOpenFileTornGenesisStartsFresh covers a crash inside the very
// first record: nothing durable exists, so reopening starts a new log
// instead of failing forever.
func TestOpenFileTornGenesisStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.log")
	if err := os.WriteFile(path, []byte(`{"seq":1,"op":"gene`), 0o644); err != nil {
		t.Fatal(err)
	}
	jm, replayed, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatalf("open over torn genesis: %v", err)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d events from a torn genesis", replayed)
	}
	if err := jm.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(mustOpen(t, path)); err != nil {
		t.Fatalf("fresh log after torn genesis: %v", err)
	}
}

// TestCompactFileFaultAtomicity injects every fault kind at byte
// offsets across the whole compacted image (boundaries and interiors)
// and asserts compaction is atomic: on failure the original log is
// byte-identical and no temporary litter remains; on success the new
// log restores to the same snapshot.
func TestCompactFileFaultAtomicity(t *testing.T) {
	dir := t.TempDir()
	build := filepath.Join(dir, "seed.log")
	jm, _, err := OpenFile(testConfig(), build)
	if err != nil {
		t.Fatal(err)
	}
	driveFileOps(t, jm)
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(build)
	if err != nil {
		t.Fatal(err)
	}
	origM, err := Restore(bytes.NewReader(original))
	if err != nil {
		t.Fatal(err)
	}
	origSnap := origM.Snapshot()

	// Learn the compacted image's size from a fault-free run.
	scratch := filepath.Join(dir, "scratch.log")
	if err := os.WriteFile(scratch, original, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompactFile(scratch); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.ReadFile(scratch)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(compacted))

	r := rng.New(2022)
	offsets := []int64{0, 1, total / 2, total - 1, total, total + 64}
	for i := 0; i < 6; i++ {
		offsets = append(offsets, 1+int64(r.Intn(int(total-1))))
	}
	for _, kind := range []faultfs.Kind{faultfs.Truncate, faultfs.Tear, faultfs.Err} {
		for _, off := range offsets {
			label := fmt.Sprintf("%v@%d", kind, off)
			target := filepath.Join(dir, "target.log")
			if err := os.WriteFile(target, original, 0o644); err != nil {
				t.Fatal(err)
			}
			kind, off := kind, off
			err := compactFile(target, func(w io.Writer) io.Writer {
				return faultfs.NewWriter(w, kind, off)
			})
			got, rerr := os.ReadFile(target)
			if rerr != nil {
				t.Fatalf("%s: %v", label, rerr)
			}
			if err != nil {
				if !bytes.Equal(got, original) {
					t.Fatalf("%s: failed compaction mutated the log", label)
				}
			} else {
				if off < total {
					t.Fatalf("%s: compaction claimed success past an un-synced fault", label)
				}
				rm, err := Restore(bytes.NewReader(got))
				if err != nil {
					t.Fatalf("%s: compacted log does not restore: %v", label, err)
				}
				if d := rm.Snapshot().Diff(origSnap); d != "" {
					t.Fatalf("%s: %s", label, d)
				}
			}
			litter, err := filepath.Glob(filepath.Join(dir, "*.compact-*"))
			if err != nil {
				t.Fatal(err)
			}
			if len(litter) != 0 {
				t.Fatalf("%s: temporary files left behind: %v", label, litter)
			}
		}
	}
}

// driveFileOps puts a small, deterministic mixed history into a
// file-backed journal (used by compaction and recovery tests).
func driveFileOps(t *testing.T, jm *Market) {
	t.Helper()
	steps := []error{
		jm.RegisterSeller("s1"),
		jm.RegisterSeller("s2"),
		jm.UploadDataset("s1", "a"),
		jm.UploadDataset("s2", "b"),
		jm.ComposeDataset("ab", "a", "b"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		buyer := market.BuyerID(fmt.Sprintf("b%d", i))
		if err := jm.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		for _, ds := range []market.DatasetID{"a", "b", "ab"} {
			jm.SubmitBid(buyer, ds, float64(20+17*i))
		}
		if _, err := jm.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCountInvariance pins PR 1's "pricing is shard-count
// independent" claim at the durability layer: the same seeded workload
// into a 1-shard and a 16-shard market yields byte-identical journal
// tails and identical snapshots.
func TestShardCountInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 2022} {
		cfg1 := testConfig()
		cfg1.Shards = 1
		cfg16 := testConfig()
		cfg16.Shards = 16
		var buf1, buf16 bytes.Buffer
		o := workloadOpts{ops: 60, strict: true}
		m1 := driveSeededWorkload(t, cfg1, seed, &buf1, o)
		m16 := driveSeededWorkload(t, cfg16, seed, &buf16, o)
		if err := m1.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m16.Close(); err != nil {
			t.Fatal(err)
		}
		s1, s16 := m1.Market.Snapshot(), m16.Market.Snapshot()
		// The shard count is parallelism configuration, not market
		// state; normalize it away before demanding exact equality.
		s1.Config.Shards, s16.Config.Shards = 0, 0
		if d := s1.Diff(s16); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		// Past the genesis record (which embeds the shard count) the
		// journals must agree byte for byte.
		tail := func(b []byte) []byte { return b[bytes.IndexByte(b, '\n')+1:] }
		if !bytes.Equal(tail(buf1.Bytes()), tail(buf16.Bytes())) {
			t.Fatalf("seed %d: journal tails diverge across shard counts", seed)
		}
	}
}

// TestConcurrentAppendsSurviveFault hammers a journaling market from
// many goroutines while the sink tears mid-stream, and asserts the log
// stays well-formed: complete records in unbroken sequence plus at most
// one torn tail — never an interleaved or post-tear record. Runs under
// -race via `make ci`.
func TestConcurrentAppendsSurviveFault(t *testing.T) {
	const goroutines = 8
	var buf bytes.Buffer
	fw := faultfs.NewWriter(&buf, faultfs.Tear, 4096)
	m, err := NewMarket(testConfig(), fw)
	if err != nil {
		t.Fatal(err)
	}
	// Each goroutine gets a private dataset; buyers are shared (one bid
	// per buyer per dataset per period keeps every bid admissible).
	var buyers []market.BuyerID
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		if err := m.UploadDataset("s", market.DatasetID(fmt.Sprintf("d%d", g))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		b := market.BuyerID(fmt.Sprintf("b%d", i))
		if err := m.RegisterBuyer(b); err != nil {
			t.Fatal(err)
		}
		buyers = append(buyers, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ds := market.DatasetID(fmt.Sprintf("d%d", g))
			for i, b := range buyers {
				// Journal errors are expected once the fault trips.
				m.SubmitBid(b, ds, float64(10+7*((g+i)%13)))
			}
		}(g)
	}
	wg.Wait()
	m.Close() // fails: the sink is torn; the log must still recover

	events, _, _, err := Recover(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent crash left mid-log corruption: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no durable events")
	}
	if _, err := Bootstrap(events); err != nil {
		t.Fatalf("durable prefix does not replay: %v", err)
	}
}
