// Store inventory: the segment/checkpoint accounting behind
// `marketctl journal-info` and the store section of /readyz.
package journal

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// SegmentInfo describes one segment file.
type SegmentInfo struct {
	Name    string `json:"name"`
	Base    int64  `json:"base_seq"`
	Records int64  `json:"records"`
	Bytes   int64  `json:"bytes"`
	Sealed  bool   `json:"sealed"`
	// Covered reports whether every record in the segment is inside
	// the newest checkpoint — i.e. compaction may delete it.
	Covered bool `json:"covered"`
}

// CheckpointInfo describes one checkpoint file.
type CheckpointInfo struct {
	Name  string `json:"name"`
	Seq   int64  `json:"seq"`
	Bytes int64  `json:"bytes"`
}

// Inventory is a store directory's full accounting.
type Inventory struct {
	Dir            string           `json:"dir"`
	Segments       []SegmentInfo    `json:"segments"`
	Checkpoints    []CheckpointInfo `json:"checkpoints"`
	FirstSeq       int64            `json:"first_seq"`
	LastSeq        int64            `json:"last_seq"`
	LastCheckpoint int64            `json:"last_checkpoint_seq"`
	TotalBytes     int64            `json:"total_bytes"`
}

// Inventory reports the store's live accounting from in-memory
// metadata (checkpoint sizes are stat'd) — cheap enough for a
// readiness probe.
func (s *Store) Inventory() Inventory {
	s.mu.Lock()
	segs := append([]segMeta(nil), s.segs...)
	ckpts := append([]int64(nil), s.ckpts...)
	lastCkpt := s.lastCkpt
	dir := s.dir
	s.mu.Unlock()
	inv := Inventory{Dir: dir, LastCheckpoint: lastCkpt}
	for i, m := range segs {
		inv.Segments = append(inv.Segments, SegmentInfo{
			Name:    segName(m.index),
			Base:    m.base,
			Records: m.records,
			Bytes:   m.bytes,
			Sealed:  i < len(segs)-1,
			// Covered means compaction may delete it — which requires
			// sealed: the active segment can sit entirely inside the
			// newest checkpoint (a clean Close checkpoints the final
			// seq) but is never removed while the store owns it.
			Covered: i < len(segs)-1 && m.records > 0 && m.maxSeq() <= lastCkpt,
		})
		inv.TotalBytes += m.bytes
	}
	if len(segs) > 0 {
		inv.FirstSeq = segs[0].base
		if last := segs[len(segs)-1]; last.records > 0 {
			inv.LastSeq = last.maxSeq()
		} else if len(segs) > 1 {
			inv.LastSeq = segs[len(segs)-2].maxSeq()
		}
	}
	if inv.LastSeq < lastCkpt {
		inv.LastSeq = lastCkpt
	}
	for _, seq := range ckpts {
		ci := CheckpointInfo{Name: ckptName(seq), Seq: seq}
		if fi, err := os.Stat(filepath.Join(dir, ci.Name)); err == nil {
			ci.Bytes = fi.Size()
		}
		inv.Checkpoints = append(inv.Checkpoints, ci)
		inv.TotalBytes += ci.Bytes
	}
	return inv
}

// InspectDir builds a store directory's inventory offline, without
// recovering any market state: seghead chaining gives each segment's
// base, and record counts come from counting complete lines (a torn
// trailing record in the final segment is not counted, matching what
// recovery would keep). The backing tool is `marketctl journal-info`.
func InspectDir(dir string) (*Inventory, error) {
	l, err := listStoreDir(dir)
	if err != nil {
		return nil, err
	}
	inv := &Inventory{Dir: dir}
	if n := len(l.ckptSeqs); n > 0 {
		inv.LastCheckpoint = l.ckptSeqs[n-1]
	}
	for i, idx := range l.segIdx {
		name := segName(idx)
		si := SegmentInfo{Name: name, Sealed: i < len(l.segIdx)-1}
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			si.Bytes = fi.Size()
		}
		head, _, torn, err := readSegHead(dir, idx)
		if err != nil {
			return nil, err
		}
		if !torn {
			si.Base = head.Base
			n, err := countRecords(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			si.Records = n
			if n > 0 {
				si.Covered = si.Sealed && si.Base+n-1 <= inv.LastCheckpoint
				inv.LastSeq = si.Base + n - 1
			}
		}
		if i == 0 {
			inv.FirstSeq = si.Base
		}
		inv.TotalBytes += si.Bytes
		inv.Segments = append(inv.Segments, si)
	}
	if inv.LastSeq < inv.LastCheckpoint {
		inv.LastSeq = inv.LastCheckpoint
	}
	for _, seq := range l.ckptSeqs {
		ci := CheckpointInfo{Name: ckptName(seq), Seq: seq}
		if fi, err := os.Stat(filepath.Join(dir, ci.Name)); err == nil {
			ci.Bytes = fi.Size()
		}
		inv.TotalBytes += ci.Bytes
		inv.Checkpoints = append(inv.Checkpoints, ci)
	}
	return inv, nil
}

// countRecords counts the complete (newline-terminated) record lines
// in a segment, excluding the seghead.
func countRecords(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	n := int64(-1) // first complete line is the seghead
	for {
		_, err := br.ReadBytes('\n')
		if err == io.EOF {
			if n < 0 {
				return 0, nil
			}
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		n++
	}
}

// DiskBytes sums the store directory's on-disk footprint — segments,
// checkpoints, and any in-flight temp files. The torture harness's
// disk ceiling reads this.
func (s *Store) DiskBytes() (int64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, ent := range ents {
		if fi, err := ent.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total, nil
}
