package journal

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"github.com/datamarket/shield/internal/market"
)

var updateGolden = flag.Bool("update", false, "regenerate golden journal fixtures")

const (
	goldenLogPath  = "testdata/pr1.log"
	goldenSnapPath = "testdata/pr1.snapshot.json"
)

// goldenWorkload is the fixed PR-1-era operation script behind the
// checked-in fixture: every journaled op kind, including a bid_batch
// with a rejected entry and a sold-then-bid dataset mix. It must never
// change — the fixture pins the on-disk format and replay semantics.
func goldenWorkload(t *testing.T, sink *bytes.Buffer) *Market {
	t.Helper()
	m, err := NewMarket(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		m.RegisterSeller("acme"),
		m.RegisterSeller("globex"),
		m.UploadDataset("acme", "weather"),
		m.UploadDataset("globex", "traffic"),
		m.ComposeDataset("weather+traffic", "weather", "traffic"),
		m.RegisterBuyer("alice"),
		m.RegisterBuyer("bob"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SubmitBid("alice", "weather", 55); err != nil {
		t.Fatal(err)
	}
	res := m.SubmitBids([]market.BidRequest{
		{Buyer: "bob", Dataset: "traffic", Amount: 70},
		{Buyer: "ghost", Dataset: "weather", Amount: 60}, // rejected, not journaled
		{Buyer: "alice", Dataset: "weather+traffic", Amount: 130},
	})
	if res[0].Err != nil || res[2].Err != nil || res[1].Err == nil {
		t.Fatalf("golden batch results changed: %+v", res)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("bob", "weather", 95); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("initech"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("initech", "logs"); err != nil {
		t.Fatal(err)
	}
	if err := m.WithdrawDataset("initech", "logs"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenPR1JournalReplays is the backward-compatibility gate: the
// checked-in PR-1-era journal (bid_batch event included) must keep
// restoring to a byte-identical market snapshot. If this fails, a
// change broke replay of logs written by earlier releases — add a
// migration, don't regenerate the fixture (regeneration, via -update,
// is only for deliberate, documented format bumps).
func TestGoldenPR1JournalReplays(t *testing.T) {
	if *updateGolden {
		var buf bytes.Buffer
		m := goldenWorkload(t, &buf)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenLogPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := json.MarshalIndent(m.Market.Snapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSnapPath, append(snap, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixtures regenerated")
	}

	logBytes, err := os.ReadFile(goldenLogPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatalf("PR-1 journal no longer parses: %v", err)
	}
	var sawBatch bool
	for _, e := range events {
		if e.Op == OpBidBatch {
			sawBatch = true
			if len(e.Bids) != 2 {
				t.Fatalf("golden bid_batch carries %d bids, want 2", len(e.Bids))
			}
		}
	}
	if !sawBatch {
		t.Fatal("golden log lost its bid_batch event")
	}

	m, err := Restore(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatalf("PR-1 journal no longer restores: %v", err)
	}
	got, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(goldenSnapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		var gs, ws market.Snapshot
		if json.Unmarshal(got, &gs) == nil && json.Unmarshal(want, &ws) == nil {
			t.Fatalf("replayed snapshot drifted from golden: %s", gs.Diff(ws))
		}
		t.Fatal("replayed snapshot drifted from golden (and no longer decodes)")
	}

	// The current writer still emits the byte-identical log for the
	// same operations: format stability cuts both ways.
	var buf bytes.Buffer
	goldenWorkload(t, &buf)
	if !bytes.Equal(buf.Bytes(), logBytes) {
		t.Fatal("writer output drifted from the PR-1 on-disk format")
	}
}
