package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/market"
)

var updateGolden = flag.Bool("update", false, "regenerate the current-format golden journal fixtures")

const (
	// The PR-1-era (format version 0) fixture. Frozen: the current
	// writer can no longer produce it, so -update does not touch it —
	// it exists precisely to prove old logs stay readable.
	legacyLogPath  = "testdata/pr1.log"
	legacySnapPath = "testdata/pr1.snapshot.json"
	// The current-format fixture, regenerated with -update on
	// deliberate format bumps.
	goldenLogPath  = "testdata/v2.log"
	goldenSnapPath = "testdata/v2.snapshot.json"
)

// goldenWorkload is the fixed operation script behind both checked-in
// fixtures: every journaled op kind, including a bid_batch with a
// rejected entry and a sold-then-bid dataset mix. It must never change —
// the fixtures pin the on-disk format and replay semantics.
func goldenWorkload(t *testing.T, sink *bytes.Buffer) *Market {
	t.Helper()
	m, err := NewMarket(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		m.RegisterSeller("acme"),
		m.RegisterSeller("globex"),
		m.UploadDataset("acme", "weather"),
		m.UploadDataset("globex", "traffic"),
		m.ComposeDataset("weather+traffic", "weather", "traffic"),
		m.RegisterBuyer("alice"),
		m.RegisterBuyer("bob"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SubmitBid("alice", "weather", 55); err != nil {
		t.Fatal(err)
	}
	res := m.SubmitBids([]market.BidRequest{
		{Buyer: "bob", Dataset: "traffic", Amount: 70},
		{Buyer: "ghost", Dataset: "weather", Amount: 60}, // rejected, not journaled
		{Buyer: "alice", Dataset: "weather+traffic", Amount: 130},
	})
	if res[0].Err != nil || res[2].Err != nil || res[1].Err == nil {
		t.Fatalf("golden batch results changed: %+v", res)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitBid("bob", "weather", 95); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("initech"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("initech", "logs"); err != nil {
		t.Fatal(err)
	}
	if err := m.WithdrawDataset("initech", "logs"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return m
}

// restoreMatches replays a fixture log and asserts the rebuilt market's
// snapshot is byte-identical to the fixture snapshot.
func restoreMatches(t *testing.T, logBytes, want []byte) {
	t.Helper()
	m, err := Restore(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatalf("fixture journal no longer restores: %v", err)
	}
	got, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		var gs, ws market.Snapshot
		if json.Unmarshal(got, &gs) == nil && json.Unmarshal(want, &ws) == nil {
			t.Fatalf("replayed snapshot drifted from golden: %s", gs.Diff(ws))
		}
		t.Fatal("replayed snapshot drifted from golden (and no longer decodes)")
	}
}

// TestGoldenPR1JournalReplays is the backward-compatibility gate: the
// checked-in PR-1-era journal — format version 0, written before the
// command core existed — must keep restoring to a byte-identical
// market snapshot through the CommandFromEvent upgrader. If this fails,
// a change broke replay of logs written by earlier releases — add a
// migration, don't regenerate the fixture (it is frozen; the current
// writer cannot produce version-0 logs).
func TestGoldenPR1JournalReplays(t *testing.T) {
	logBytes, err := os.ReadFile(legacyLogPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(logBytes, []byte(`"v":`)) {
		t.Fatal("legacy fixture carries a version field; it must stay a version-0 log")
	}
	events, err := Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatalf("PR-1 journal no longer parses: %v", err)
	}
	if events[0].V != 0 {
		t.Fatalf("legacy head decoded version %d, want 0", events[0].V)
	}
	var sawBatch bool
	for _, e := range events {
		if e.Op == OpBidBatch {
			sawBatch = true
			if len(e.Bids) != 2 {
				t.Fatalf("golden bid_batch carries %d bids, want 2", len(e.Bids))
			}
		}
	}
	if !sawBatch {
		t.Fatal("golden log lost its bid_batch event")
	}
	want, err := os.ReadFile(legacySnapPath)
	if err != nil {
		t.Fatal(err)
	}
	restoreMatches(t, logBytes, want)
}

// TestGoldenV2JournalStable pins the current on-disk format: the
// checked-in version-2 log must parse with its stamped version, restore
// to its checked-in snapshot, and — format stability cuts both ways —
// the current writer must still emit it byte-identically for the same
// operations.
func TestGoldenV2JournalStable(t *testing.T) {
	if *updateGolden {
		var buf bytes.Buffer
		m := goldenWorkload(t, &buf)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenLogPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := json.MarshalIndent(m.Market.Snapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSnapPath, append(snap, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixtures regenerated")
	}

	logBytes, err := os.ReadFile(goldenLogPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatalf("v2 journal no longer parses: %v", err)
	}
	if events[0].V != FormatVersion {
		t.Fatalf("v2 head carries version %d, want %d", events[0].V, FormatVersion)
	}
	want, err := os.ReadFile(goldenSnapPath)
	if err != nil {
		t.Fatal(err)
	}
	restoreMatches(t, logBytes, want)

	// The current writer still emits the byte-identical log for the
	// same operations.
	var buf bytes.Buffer
	goldenWorkload(t, &buf)
	if !bytes.Equal(buf.Bytes(), logBytes) {
		t.Fatal("writer output drifted from the v2 on-disk format")
	}
}

// TestGoldenFixturesAgree: the two fixtures record the same workload in
// different format versions, so they must rebuild identical markets.
func TestGoldenFixturesAgree(t *testing.T) {
	legacy, err := os.ReadFile(legacySnapPath)
	if err != nil {
		t.Fatal(err)
	}
	current, err := os.ReadFile(goldenSnapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, current) {
		t.Fatal("version-0 and version-2 fixtures no longer rebuild the same market")
	}
}

// TestUnknownVersionRejected: a head claiming a version this build does
// not know fails with ErrVersion instead of replaying under guessed
// semantics.
func TestUnknownVersionRejected(t *testing.T) {
	logBytes, err := os.ReadFile(goldenLogPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 3} {
		bumped := bytes.Replace(logBytes, []byte(`"v":2`), []byte(`"v":`+string(rune('0'+v))), 1)
		if bytes.Equal(bumped, logBytes) {
			t.Fatal("fixture head lost its version field")
		}
		_, err := Read(bytes.NewReader(bumped))
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: got %v, want ErrVersion", v, err)
		}
		if err == nil || !strings.Contains(err.Error(), "unsupported format version") {
			t.Fatalf("version %d: error %v lacks version message", v, err)
		}
	}
}
