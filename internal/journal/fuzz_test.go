package journal

import (
	"strings"
	"testing"
)

func FuzzReadNeverPanics(f *testing.F) {
	f.Add("")
	f.Add("{bogus")
	f.Add(`{"seq":1,"op":"genesis","config":{"Seed":1}}`)
	f.Add(`{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1}}
{"seq":2,"op":"register_buyer","buyer":"b"}`)
	f.Add(`{"seq":2,"op":"tick"}`)
	f.Add(`{"seq":1,"op":"genesis"}{"seq":2,"op":"tick"}`)
	f.Fuzz(func(t *testing.T, log string) {
		events, err := Read(strings.NewReader(log))
		if err != nil {
			return // malformed logs must error, not panic
		}
		// Well-formed logs must replay without panicking (errors are
		// fine: the genesis config may be invalid).
		m, rerr := Restore(strings.NewReader(log))
		if rerr == nil && m == nil {
			t.Fatal("Restore returned nil market without error")
		}
		_ = events
	})
}
