package journal

import (
	"strings"
	"testing"
)

func FuzzReadNeverPanics(f *testing.F) {
	f.Add("")
	f.Add("{bogus")
	f.Add(`{"seq":1,"op":"genesis","config":{"Seed":1}}`)
	f.Add(`{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1}}
{"seq":2,"op":"register_buyer","buyer":"b"}`)
	f.Add(`{"seq":2,"op":"tick"}`)
	f.Add(`{"seq":1,"op":"genesis"}{"seq":2,"op":"tick"}`)
	// Batch bids, including an empty and a malformed batch.
	f.Add(`{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1}}
{"seq":2,"op":"register_buyer","buyer":"b"}
{"seq":3,"op":"register_seller","seller":"s"}
{"seq":4,"op":"upload","seller":"s","dataset":"d"}
{"seq":5,"op":"bid_batch","bids":[{"buyer":"b","dataset":"d","amount":2}]}`)
	f.Add(`{"seq":1,"op":"genesis","config":{"Seed":1}}
{"seq":2,"op":"bid_batch","bids":[]}`)
	f.Add(`{"seq":1,"op":"bid_batch","bids":[{"buyer":"b"`)
	// Snapshot-headed (compacted) logs, valid and corrupt.
	f.Add(`{"seq":1,"op":"snapshot","snapshot":{"config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1},"clock":0,"graph":{},"engines":{},"owners":{},"buyers":{},"sellers":{},"revenue":0}}`)
	f.Add(`{"seq":1,"op":"snapshot","snapshot":{"clock":-5}}`)
	// Torn records: a trailing line without a newline is the one
	// anomaly a crash can produce, and must be tolerated.
	f.Add(`{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1}}
{"seq":2,"op":"regi`)
	f.Add(`{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":4,"Candidates":[1,2]},"Seed":1}}
{"seq":2,"op":"tick"}
{"seq":3,"op"`)
	f.Add(`{"seq":1,"op":"gene`)
	f.Fuzz(func(t *testing.T, log string) {
		events, err := Read(strings.NewReader(log))
		if err != nil {
			return // malformed logs must error, not panic
		}
		// Well-formed logs must replay without panicking (errors are
		// fine: the genesis config may be invalid).
		m, rerr := Restore(strings.NewReader(log))
		if rerr == nil && m == nil {
			t.Fatal("Restore returned nil market without error")
		}
		// Torn-tail invariance: appending unterminated bytes to any
		// readable log must not change what Read recovers — they either
		// form a new torn tail or extend an existing one, and a crash
		// mid final write loses only that write.
		torn, terr := Read(strings.NewReader(log + `{"to`))
		if terr != nil {
			t.Fatalf("readable log stopped reading with torn tail: %v", terr)
		}
		if len(torn) != len(events) {
			t.Fatalf("torn tail changed recovered events: %d vs %d", len(torn), len(events))
		}
	})
}
