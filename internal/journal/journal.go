// Package journal provides durable, replayable persistence for the
// market arbiter via command sourcing: every successful mutating
// operation (registrations, uploads, compositions, bids, clock ticks)
// is appended to a JSON-lines log as the command that produced it, and
// replaying the log into a fresh market re-applies those commands
// through the same deterministic core (internal/command) the live
// market runs — engines are deterministic in their seeds, so the same
// command sequence yields the same prices, allocations, waits and
// ledgers. CommandFromEvent and EventFromCommand convert between the
// on-disk record and the typed command; Replay is a CommandFromEvent +
// Apply loop.
//
// The first record is a genesis event carrying the market configuration,
// so a log is self-contained: Restore reads a log and returns a running
// market.
//
// # Format versions
//
// The head record (genesis or snapshot) carries the log's format
// version in its "v" field. Logs written before versioning omit the
// field (version 0) and remain readable forever: their records upgrade
// to commands through CommandFromEvent. Current writers stamp
// FormatVersion. Read rejects versions it does not know with
// ErrVersion rather than guessing at future semantics.
//
// # Crash safety
//
// Each record is encoded off to the side and handed to the sink as one
// Write call, newline-terminated, so the only way a record lands
// partially is the operating system or hardware dying mid-write. Read
// and Restore therefore tolerate exactly one trailing torn record — a
// final line without its newline terminator — by truncating to the last
// complete event; any anomaly before the tail (unparseable line,
// sequence gap) is a hard error carrying the expected sequence number
// and byte offset, because no crash can produce it. A writer whose sink
// fails is poisoned: the failed record may be torn on disk, so every
// subsequent append returns the original error rather than writing
// after the tear. With WithFsync, every append is fsynced before the
// corresponding operation is acknowledged; Close always syncs syncable
// sinks. Compaction builds the replacement log in a temporary sibling
// file, syncs it, and atomically renames it over the original (then
// syncs the directory), so an interrupted compaction leaves either the
// old or the new log — never a hybrid.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
)

// FormatVersion is the journal format stamped on the head record of
// every log written by this release. Version history:
//
//	0 — implicit (no "v" field): the PR-1/PR-2 event log. Same record
//	    shapes, readable through the CommandFromEvent upgrader.
//	2 — the command-core log: op names coincide with internal/command
//	    op names and replay is an Apply loop. Byte-compatible with
//	    version 0 except for the head's "v" field.
//
// (Version 1 is skipped: a pre-release draft used it and rejecting it
// outright is safer than guessing which draft wrote a given log.)
const FormatVersion = 2

// Op enumerates journaled operations. Every Op except the two head
// records (OpGenesis, OpSnapshot) names the internal/command operation
// it records — the string values match command.Op so a journal record
// is a canonical command encoding plus sequencing metadata.
type Op string

// Journaled operations.
const (
	OpGenesis        Op = "genesis"
	OpRegisterBuyer  Op = "register_buyer"
	OpRegisterSeller Op = "register_seller"
	OpUpload         Op = "upload"
	OpCompose        Op = "compose"
	OpBid            Op = "bid"
	// OpBidBatch records the successful bids of one batch submission in
	// the order they were applied, so replay reproduces the batch with a
	// single event.
	OpBidBatch Op = "bid_batch"
	OpTick     Op = "tick"
	OpWithdraw Op = "withdraw"
	// OpSnapshot heads a compacted log: it embeds the full market state
	// at the moment of compaction, and the remaining events replay on
	// top of it.
	OpSnapshot Op = "snapshot"
)

// BatchBid is one entry of an OpBidBatch event.
type BatchBid struct {
	Buyer   string  `json:"buyer"`
	Dataset string  `json:"dataset"`
	Amount  float64 `json:"amount"`
}

// Event is one journal record. Field presence depends on Op.
type Event struct {
	Seq int64 `json:"seq"`
	Op  Op    `json:"op"`
	// V is the log's format version, stamped on head records (genesis
	// and snapshot) only; body records inherit the head's version.
	// Absent (0) on logs written before versioning.
	V            int              `json:"v,omitempty"`
	Buyer        string           `json:"buyer,omitempty"`
	Seller       string           `json:"seller,omitempty"`
	Dataset      string           `json:"dataset,omitempty"`
	Constituents []string         `json:"constituents,omitempty"`
	Amount       float64          `json:"amount,omitempty"`
	Bids         []BatchBid       `json:"bids,omitempty"`
	Config       *market.Config   `json:"config,omitempty"`
	Snapshot     *market.Snapshot `json:"snapshot,omitempty"`
	// Trace is the request ID of the HTTP or wire request that produced
	// this event, when one was in flight — it joins a journal record to
	// the bid-lifecycle trace and the structured request log, across
	// process boundaries when the transport propagated the ID. Replay
	// ignores it.
	Trace string `json:"trace,omitempty"`
}

// Sentinel errors.
var (
	ErrNoGenesis   = errors.New("journal: log does not start with a genesis event")
	ErrSeqGap      = errors.New("journal: sequence gap or reorder")
	ErrBadEvent    = errors.New("journal: malformed event")
	ErrReplay      = errors.New("journal: replay diverged")
	ErrClosed      = errors.New("journal: writer closed")
	ErrDoubleStart = errors.New("journal: genesis already written")
	ErrVersion     = errors.New("journal: unsupported format version")
)

// syncer is the durability hook *os.File (and fault-injection shims)
// provide.
type syncer interface{ Sync() error }

// Option configures a Writer (and the constructors that build one).
type Option func(*Writer)

// WithFsync makes the writer fsync the sink after every append, so an
// acknowledged operation survives an OS or power crash, not just a
// process crash. It is a no-op for sinks without a Sync method.
func WithFsync() Option {
	return func(w *Writer) { w.fsync = true }
}

// WithGroupCommit coalesces concurrent appends into one sink Write and
// one fsync. An append joins the writer's pending group (creating it
// when there is none); the record that created the group — the leader —
// waits up to window for followers to pile on, then hands the whole
// group to the sink as a single Write call, syncs it (WithFsync), and
// wakes every member. Each member is acknowledged only after its
// group's sync, so the durability guarantee per acknowledged operation
// is unchanged — only the latency (bounded by window plus one flush)
// and the fsync amortization differ. A window of 0 still batches: every
// record that arrives while the previous group is flushing joins the
// next group, so group size tracks the append parallelism.
//
// A group that fails to reach the sink fails every member with the same
// error and poisons the writer — never a prefix of the group silently.
// Groups flush in formation order, so the log remains an unbroken
// sequence of complete records plus at most one torn tail, exactly as
// in per-record mode.
func WithGroupCommit(window time.Duration) Option {
	return func(w *Writer) {
		w.grouped = true
		w.groupWindow = window
	}
}

// WithTelemetry instruments the writer: append and fsync latency
// histograms, a per-record size histogram, group-size and leader-wait
// histograms (WithGroupCommit), counters for appended bytes and failed
// appends, and the journal's stages on the shared shield_stage_seconds
// family (group_commit.queue_wait/append/fsync when grouped,
// journal.append/fsync otherwise), all registered on t's registry.
// Latency observations stamp the requesting trace's ID as a bucket
// exemplar, so a slow fsync on /metrics links to its full trace on
// /debug/traces. Register at most one writer per registry (families
// panic on double registration by design); short-lived internal
// writers, like the one Compact builds, stay uninstrumented.
func WithTelemetry(t *obs.Telemetry) Option {
	return func(w *Writer) {
		r := t.Registry
		w.tel = &writerTelemetry{
			appendLatency: r.Histogram("shield_journal_append_seconds",
				"Time to hand one encoded record to the journal sink.",
				obs.LatencyBuckets()),
			fsyncLatency: r.Histogram("shield_journal_fsync_seconds",
				"Time to fsync the journal after an append (WithFsync only).",
				obs.LatencyBuckets()),
			recordBytes: r.Histogram("shield_journal_record_bytes",
				"Encoded size of one journal record.",
				obs.SizeBuckets()),
			groupSize: r.Histogram("shield_journal_group_records",
				"Records coalesced into one group-commit flush (WithGroupCommit).",
				[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
			leaderWait: r.Histogram("shield_journal_group_leader_wait_seconds",
				"Time a group leader spends in the commit window plus waiting for the previous group's flush (WithGroupCommit).",
				obs.LatencyBuckets()),
			bytesTotal: r.Counter("shield_journal_appended_bytes_total",
				"Bytes appended to the journal."),
			appendErrors: r.Counter("shield_journal_append_errors_total",
				"Appends that failed and poisoned the writer."),
			stQueueWait:   t.Stage("group_commit.queue_wait"),
			stGroupAppend: t.Stage("group_commit.append"),
			stGroupFsync:  t.Stage("group_commit.fsync"),
			stAppend:      t.Stage("journal.append"),
			stFsync:       t.Stage("journal.fsync"),
		}
	}
}

// writerTelemetry holds a writer's pre-bound instruments; nil on
// uninstrumented writers. The st* cells are this writer's stages on the
// shared shield_stage_seconds family.
type writerTelemetry struct {
	appendLatency *obs.Histogram
	fsyncLatency  *obs.Histogram
	recordBytes   *obs.Histogram
	groupSize     *obs.Histogram
	leaderWait    *obs.Histogram
	bytesTotal    *obs.Counter
	appendErrors  *obs.Counter

	stQueueWait   *obs.Histogram // group_commit.queue_wait
	stGroupAppend *obs.Histogram // group_commit.append
	stGroupFsync  *obs.Histogram // group_commit.fsync
	stAppend      *obs.Histogram // journal.append (per-record mode)
	stFsync       *obs.Histogram // journal.fsync (per-record mode)
}

// Writer appends events to a log. Safe for concurrent use.
//
// Every record reaches the sink as a single newline-terminated Write.
// A sink failure poisons the writer: the failed record may be torn on
// disk, so all subsequent appends return the original error instead of
// writing after the tear (which would turn a recoverable torn tail into
// unrecoverable mid-log corruption).
type Writer struct {
	mu      sync.Mutex
	sink    io.Writer
	scratch bytes.Buffer
	enc     *json.Encoder
	fsync   bool
	tel     *writerTelemetry
	seq     int64
	started bool
	closed  bool
	err     error // sticky append failure

	// commit, when set (OnCommit), observes every durably committed
	// record in strict sequence order — the hook behind the replication
	// feed. It runs after the record's write (and fsync) succeeds and
	// before the append is acknowledged to its caller.
	commit func(Event)

	// Group commit (WithGroupCommit). cur is the forming group
	// concurrent appends pile onto (guarded by mu); flushMu serializes
	// group flushes so groups reach the sink in formation order — the
	// lock order is flushMu before mu. groups and maxGroup are
	// diagnostics (tests read them; telemetry exports the histogram).
	grouped     bool
	groupWindow time.Duration
	cur         *commitGroup
	flushMu     sync.Mutex
	groups      int64
	maxGroup    int
}

// commitGroup is one batch of records bound for a single sink Write
// (plus one fsync). Members append their encoded records to buf under
// the writer mutex; the member that created the group leads the flush.
// done closes once the group's fate is decided, and err is the shared
// outcome every member returns — the whole group succeeds or the whole
// group fails, never a silent prefix.
type commitGroup struct {
	buf  bytes.Buffer
	n    int
	done chan struct{}
	err  error
	// events retains the group's records, in sequence order, when a
	// commit hook is installed — flushGroup replays them to the hook
	// after the group reaches the sink.
	events []Event
}

// NewWriter wraps w. Call Genesis before any other append.
func NewWriter(w io.Writer, opts ...Option) *Writer {
	jw := &Writer{sink: w}
	jw.enc = json.NewEncoder(&jw.scratch)
	for _, o := range opts {
		o(jw)
	}
	return jw
}

// OnCommit installs fn as the writer's commit hook: it is invoked once
// per durably committed record, in strict sequence order, with the
// record exactly as written (Seq assigned). Per-record mode calls it
// after the write (and fsync) succeeds, before the append returns;
// group-commit mode calls it per member after the group's flush
// succeeds, before any member is woken. Failed appends never reach the
// hook. fn must not call back into the writer and should return
// quickly — it runs on the append path.
//
// Install the hook before traffic flows (records appended while no
// hook is set are not replayed to a later hook), and install at most
// one: this is the feed point for replication, not a general event
// bus.
func (w *Writer) OnCommit(fn func(Event)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.commit = fn
}

// LastSeq returns the sequence number of the last record the writer
// accepted (head included), 0 when nothing has been written. In
// group-commit mode the newest records may still be in flight to the
// sink; quiesce appends before treating LastSeq as a durable high-water
// mark.
func (w *Writer) LastSeq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Genesis writes the configuration header. Must be called exactly once,
// first.
func (w *Writer) Genesis(cfg market.Config) error {
	return w.head(Event{Op: OpGenesis, Config: &cfg})
}

// Snapshot writes a full-state header (a compacted log's first record).
// Must be called exactly once, first.
func (w *Writer) Snapshot(s market.Snapshot) error {
	return w.head(Event{Op: OpSnapshot, Snapshot: &s})
}

func (w *Writer) head(e Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.started {
		return ErrDoubleStart
	}
	w.started = true
	e.V = FormatVersion
	return w.append(context.Background(), e)
}

// Append journals one event (Seq is assigned by the writer).
func (w *Writer) Append(e Event) error {
	return w.AppendCtx(context.Background(), e)
}

// AppendCtx is Append with request context: when ctx carries a sampled
// obs trace, the record's sink write and fsync land as spans on it —
// journal.append and journal.fsync in per-record mode, or
// group_commit.queue_wait/append/fsync under WithGroupCommit (the
// flush spans land on the group leader's trace; a follower sees only
// its queue wait).
func (w *Writer) AppendCtx(ctx context.Context, e Event) error {
	if w.grouped {
		return w.appendGrouped(ctx, e)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if !w.started {
		return ErrNoGenesis
	}
	if e.Op == OpGenesis || e.Op == OpSnapshot {
		return ErrDoubleStart
	}
	return w.append(ctx, e)
}

// appendGrouped enqueues one record onto the pending commit group and
// returns once the group's flush decides its fate. The sequence number
// advances at enqueue time: groups flush in formation order and a
// failed flush poisons the writer, so no later record can ever occupy
// a failed record's slot.
func (w *Writer) appendGrouped(ctx context.Context, e Event) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if !w.started {
		w.mu.Unlock()
		return ErrNoGenesis
	}
	if e.Op == OpGenesis || e.Op == OpSnapshot {
		w.mu.Unlock()
		return ErrDoubleStart
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	e.Seq = w.seq + 1
	w.scratch.Reset()
	if err := w.enc.Encode(e); err != nil {
		// Nothing was enqueued; the writer stays usable.
		w.mu.Unlock()
		return fmt.Errorf("journal: encoding event %d: %w", e.Seq, err)
	}
	w.seq = e.Seq
	if w.tel != nil {
		w.tel.recordBytes.Observe(float64(w.scratch.Len()))
	}
	g := w.cur
	leader := g == nil
	if leader {
		g = &commitGroup{done: make(chan struct{})}
		w.cur = g
	}
	g.buf.Write(w.scratch.Bytes())
	g.n++
	if w.commit != nil {
		g.events = append(g.events, e)
	}
	w.mu.Unlock()

	if !leader {
		// A follower's queue wait runs from enqueue to the group's fate;
		// it is the price of riding someone else's fsync.
		waitStart := time.Now()
		<-g.done
		wait := time.Since(waitStart)
		obs.TraceFrom(ctx).AddSpan("group_commit.queue_wait", waitStart, wait)
		if w.tel != nil {
			w.tel.stQueueWait.ObserveTrace(wait.Seconds(), obs.ExemplarID(ctx))
		}
		return g.err
	}
	// Leader: give followers the commit window to pile on, then flush.
	// The sleep happens before taking flushMu, so it overlaps the
	// previous group's sink write instead of adding to it. The leader's
	// queue wait — window plus flushMu acquisition — is measured inside
	// flushGroup, where the wait actually ends.
	waitStart := time.Now()
	if w.groupWindow > 0 {
		time.Sleep(w.groupWindow)
	}
	w.flushGroup(ctx, g, waitStart)
	return g.err
}

// flushGroup detaches g from the writer and commits it: one sink Write,
// one fsync (WithFsync), one shared outcome. flushMu serializes flushes
// in group-formation order; a sticky writer error fails the group
// without touching the sink. waitStart is when the leader began waiting
// (window start); the span and histograms charge everything up to the
// flushMu acquisition to group_commit.queue_wait.
func (w *Writer) flushGroup(ctx context.Context, g *commitGroup, waitStart time.Time) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	wait := time.Since(waitStart)
	obs.TraceFrom(ctx).AddSpan("group_commit.queue_wait", waitStart, wait)
	if w.tel != nil {
		w.tel.leaderWait.Observe(wait.Seconds())
		w.tel.stQueueWait.ObserveTrace(wait.Seconds(), obs.ExemplarID(ctx))
	}
	w.mu.Lock()
	if w.cur == g {
		w.cur = nil // no further members may join
	}
	if w.err != nil {
		// An earlier group tore the sink; writing after the tear would
		// turn a recoverable torn tail into mid-log corruption.
		g.err = w.err
		w.mu.Unlock()
		close(g.done)
		return
	}
	w.mu.Unlock()

	endAppend := obs.StartSpan(ctx, "group_commit.append")
	var start time.Time
	if w.tel != nil {
		start = time.Now()
	}
	n, err := w.sink.Write(g.buf.Bytes())
	if w.tel != nil {
		id := obs.ExemplarID(ctx)
		w.tel.appendLatency.ObserveSinceTrace(start, id)
		w.tel.stGroupAppend.ObserveSinceTrace(start, id)
	}
	endAppend.End()
	if err != nil {
		err = fmt.Errorf("journal: writing group of %d records: %w", g.n, err)
	} else if w.fsync {
		if s, ok := w.sink.(syncer); ok {
			endFsync := obs.StartSpan(ctx, "group_commit.fsync")
			if w.tel != nil {
				start = time.Now()
			}
			serr := s.Sync()
			if w.tel != nil {
				id := obs.ExemplarID(ctx)
				w.tel.fsyncLatency.ObserveSinceTrace(start, id)
				w.tel.stGroupFsync.ObserveSinceTrace(start, id)
			}
			endFsync.End()
			if serr != nil {
				err = fmt.Errorf("journal: syncing group of %d records: %w", g.n, serr)
			}
		}
	}

	w.mu.Lock()
	var commit func(Event)
	if err != nil {
		if w.tel != nil {
			w.tel.appendErrors.Inc()
		}
		w.err = err
	} else {
		w.groups++
		if g.n > w.maxGroup {
			w.maxGroup = g.n
		}
		if w.tel != nil {
			w.tel.bytesTotal.Add(uint64(n))
			w.tel.groupSize.Observe(float64(g.n))
		}
		commit = w.commit
	}
	w.mu.Unlock()
	if commit != nil {
		// Still under flushMu, so groups reach the hook in flush ==
		// formation == sequence order, and before any member is acked.
		for _, e := range g.events {
			commit(e)
		}
	}
	g.err = err
	close(g.done)
}

func (w *Writer) append(ctx context.Context, e Event) error {
	if w.err != nil {
		return w.err
	}
	e.Seq = w.seq + 1
	w.scratch.Reset()
	if err := w.enc.Encode(e); err != nil {
		// Nothing reached the sink; the writer stays usable.
		return fmt.Errorf("journal: encoding event %d: %w", e.Seq, err)
	}
	endAppend := obs.StartSpan(ctx, "journal.append")
	var start time.Time
	if w.tel != nil {
		start = time.Now()
	}
	n, err := w.sink.Write(w.scratch.Bytes())
	if w.tel != nil {
		id := obs.ExemplarID(ctx)
		w.tel.appendLatency.ObserveSinceTrace(start, id)
		w.tel.stAppend.ObserveSinceTrace(start, id)
	}
	endAppend.End()
	if err != nil {
		if w.tel != nil {
			w.tel.appendErrors.Inc()
		}
		w.err = fmt.Errorf("journal: writing event %d: %w", e.Seq, err)
		return w.err
	}
	if w.tel != nil {
		w.tel.bytesTotal.Add(uint64(n))
		w.tel.recordBytes.Observe(float64(n))
	}
	if w.fsync {
		if s, ok := w.sink.(syncer); ok {
			endFsync := obs.StartSpan(ctx, "journal.fsync")
			if w.tel != nil {
				start = time.Now()
			}
			serr := s.Sync()
			if w.tel != nil {
				id := obs.ExemplarID(ctx)
				w.tel.fsyncLatency.ObserveSinceTrace(start, id)
				w.tel.stFsync.ObserveSinceTrace(start, id)
			}
			endFsync.End()
			if serr != nil {
				if w.tel != nil {
					w.tel.appendErrors.Inc()
				}
				w.err = fmt.Errorf("journal: syncing event %d: %w", e.Seq, serr)
				return w.err
			}
		}
	}
	w.seq = e.Seq
	if w.commit != nil {
		// Under w.mu: per-record appends reach the hook in sequence
		// order, after durability, before the caller is acked.
		w.commit(e)
	}
	return nil
}

// Healthy reports whether the writer can accept appends: nil while
// open and unpoisoned, ErrClosed after Close, and the original sticky
// append failure after a sink error. It backs readiness probes.
func (w *Writer) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	return nil
}

// Close marks the writer closed and syncs syncable sinks, so a graceful
// shutdown is durable even without WithFsync. Further appends fail with
// ErrClosed. In group-commit mode Close first drains the pending group
// — its members were promised an answer and get a real one. Close does
// not close the sink; callers that opened a file own closing it
// (Market.Close does both).
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	g := w.cur
	w.mu.Unlock()
	if g != nil {
		<-g.done // the group's leader is mid-window or mid-flush; let it finish
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if s, ok := w.sink.(syncer); ok {
		if err := s.Sync(); err != nil {
			w.err = fmt.Errorf("journal: syncing on close: %w", err)
			return w.err
		}
	}
	return nil
}

// Scan streams a log record by record, tolerating exactly one trailing
// torn record: a final line without its newline terminator is dropped
// (a crash killed the writer mid-record), and torn reports whether that
// happened. fn is invoked once per complete record, in order; a non-nil
// fn error aborts the scan and is returned verbatim. Scan returns the
// byte length of the durable prefix — the log up to and including the
// last complete record — which callers resuming appends must truncate
// the file to. Any malformed or out-of-sequence record before the tail
// is a hard error carrying the expected sequence number and byte
// offset, because crashes cannot produce mid-log damage: it is real
// corruption. The first record's sequence number must be firstSeq
// (records are contiguous from there); a whole-log scan passes 1, a
// segment scan passes the segment's base. Scan does not validate the
// header; Read and Bootstrap do.
//
// Scan is the O(1)-memory primitive under Recover, Restore, OpenFile
// and the segmented Store: none of them materialize the history as a
// slice, so recovery cost is bounded by the tail being replayed, not by
// what it allocates.
func Scan(r io.Reader, firstSeq int64, fn func(Event) error) (durable int64, torn bool, err error) {
	br := bufio.NewReader(r)
	seq := firstSeq - 1
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF {
			if len(line) > 0 {
				// Trailing bytes without a newline: the torn tail.
				return durable, true, nil
			}
			return durable, false, nil
		}
		if rerr != nil {
			return 0, false, fmt.Errorf("journal: reading event %d at byte %d: %w", seq+1, durable, rerr)
		}
		var e Event
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			return 0, false, fmt.Errorf("%w: event %d at byte %d: %v", ErrBadEvent, seq+1, durable, uerr)
		}
		seq++
		if e.Seq != seq {
			return 0, false, fmt.Errorf("%w: got %d, want %d at byte %d", ErrSeqGap, e.Seq, seq, durable)
		}
		if ferr := fn(e); ferr != nil {
			return 0, false, ferr
		}
		durable += int64(len(line))
	}
}

// Recover is the slice-returning wrapper over Scan kept for tests and
// small logs: it materializes every event in memory. Production
// recovery paths (OpenFile, Restore, the segmented Store) stream
// through Scan instead.
func Recover(r io.Reader) (events []Event, durable int64, torn bool, err error) {
	durable, torn, err = Scan(r, 1, func(e Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		return nil, 0, false, err
	}
	return events, durable, torn, nil
}

// Read parses a log, validating sequence continuity and the header: the
// first event must be a genesis (fresh log) or a snapshot (compacted
// log) carrying a known format version — 0 (pre-versioning logs, which
// omit the field) or FormatVersion; anything else fails with ErrVersion.
// It returns every event, header included. A single trailing torn
// record — the signature of a crash mid-append — is silently dropped;
// see Recover.
func Read(r io.Reader) ([]Event, error) {
	events, _, _, err := Recover(r)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, ErrNoGenesis
	}
	switch head := events[0]; {
	case head.Op == OpGenesis && head.Config != nil:
	case head.Op == OpSnapshot && head.Snapshot != nil:
	default:
		return nil, ErrNoGenesis
	}
	if v := events[0].V; v != 0 && v != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads 0 and %d)", ErrVersion, v, FormatVersion)
	}
	return events, nil
}

// Bootstrap builds a market from a validated event slice: the head
// (genesis or snapshot) seeds the market and the tail replays onto it.
func Bootstrap(events []Event) (*market.Market, error) {
	if len(events) == 0 {
		return nil, ErrNoGenesis
	}
	m, err := marketFromHead(events[0])
	if err != nil {
		return nil, err
	}
	if err := Replay(m, events[1:]); err != nil {
		return nil, err
	}
	return m, nil
}

// marketFromHead builds the market a log head describes: a genesis
// head seeds a fresh market from its recorded config, a snapshot head
// restores full state. Heads carrying a format version this build does
// not know fail with ErrVersion; anything that is not a well-formed
// head fails with ErrNoGenesis.
func marketFromHead(e Event) (*market.Market, error) {
	if v := e.V; v != 0 && v != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads 0 and %d)", ErrVersion, v, FormatVersion)
	}
	switch {
	case e.Op == OpGenesis && e.Config != nil:
		m, err := market.New(*e.Config)
		if err != nil {
			return nil, fmt.Errorf("journal: genesis config: %w", err)
		}
		return m, nil
	case e.Op == OpSnapshot && e.Snapshot != nil:
		m, err := market.RestoreSnapshot(*e.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("journal: snapshot head: %w", err)
		}
		return m, nil
	}
	return nil, ErrNoGenesis
}

// Replay applies events to m in order: each record upgrades to its
// command through CommandFromEvent and goes through Market.Apply — the
// same deterministic core the live market ran when the record was
// written. Every event must succeed: the journal only contains
// operations that succeeded when recorded, and engines are
// deterministic, so any failure means the log does not match the market
// configuration.
func Replay(m *market.Market, events []Event) error {
	for _, e := range events {
		if err := applyEvent(m, e); err != nil {
			return err
		}
	}
	return nil
}

// applyEvent replays one body record onto m; see Replay.
func applyEvent(m *market.Market, e Event) error {
	cmd, err := CommandFromEvent(e)
	if err == nil {
		_, err = m.Apply(cmd)
	}
	if err != nil {
		return fmt.Errorf("%w: event %d (%s): %v", ErrReplay, e.Seq, e.Op, err)
	}
	return nil
}

// restoreStream rebuilds a market from a log in one streaming pass: the
// head seeds the market and every subsequent record applies as it is
// scanned, so the whole-log []Event slice Recover would build never
// exists. It returns the market (nil when not even the head survived —
// a crash during the very first append), the sequence number of the
// last replayed record, the durable byte prefix, and whether a torn
// tail was dropped.
func restoreStream(r io.Reader) (m *market.Market, lastSeq, durable int64, torn bool, err error) {
	durable, torn, err = Scan(r, 1, func(e Event) error {
		if m == nil {
			var herr error
			m, herr = marketFromHead(e)
			if herr != nil {
				return herr
			}
		} else if aerr := applyEvent(m, e); aerr != nil {
			return aerr
		}
		lastSeq = e.Seq
		return nil
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	return m, lastSeq, durable, torn, nil
}

// Restore reads a log and rebuilds the market it describes, streaming
// one record at a time.
func Restore(r io.Reader) (*market.Market, error) {
	m, _, _, _, err := restoreStream(r)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, ErrNoGenesis
	}
	return m, nil
}

// Compact reads a log from r and writes an equivalent single-snapshot
// log to w: the rebuilt market's full state becomes the new head, so
// restart cost no longer grows with history.
func Compact(r io.Reader, w io.Writer, opts ...Option) error {
	m, err := Restore(r)
	if err != nil {
		return err
	}
	nw := NewWriter(w, opts...)
	if err := nw.Snapshot(m.Snapshot()); err != nil {
		return err
	}
	return nw.Close()
}

// CompactFile compacts a journal file in place, atomically: the
// snapshot log is built in a temporary sibling file, synced, and
// renamed over the original (then the directory is synced). A crash or
// error at any point leaves either the old log or the new log intact —
// never a half-written hybrid.
func CompactFile(path string) error {
	return compactFile(path, nil)
}

// compactFile is CompactFile with a test hook: wrap, when non-nil,
// wraps the temporary file's writer so crash tests can inject faults at
// chosen byte offsets.
func compactFile(path string, wrap func(io.Writer) io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		f.Close()
		return err
	}
	var sink io.Writer = tmp
	if wrap != nil {
		sink = wrap(tmp)
	}
	// Compact's writer syncs the sink on Close, so a silently-lost write
	// surfaces here, before the rename can install a short log.
	if err := Compact(f, sink); err != nil {
		f.Close()
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	f.Close()
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncFileHook is the post-truncation fsync; crash tests swap it to
// inject a failure at exactly that point. Production always points at
// (*os.File).Sync.
var syncFileHook = (*os.File).Sync

// repairTornTail truncates path to its durable prefix and makes the
// repair itself durable: the file is fsynced, then its parent
// directory. A bare truncate only reaches the page cache, so a crash
// immediately after recovery could resurrect the torn bytes and the
// writer would then append after the tear — mid-log corruption the next
// recovery cannot repair.
func repairTornTail(path string, durable int64) error {
	if err := os.Truncate(path, durable); err != nil {
		return fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: reopening %s after tail repair: %w", path, err)
	}
	err = syncFileHook(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: syncing repaired tail of %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("journal: syncing directory after tail repair of %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Market wraps a market.Market, journaling every successful mutating
// operation. Reads pass through to the embedded market.
type Market struct {
	*market.Market
	w *Writer
	// sink, when the journal owns its file (OpenFile) or store
	// (OpenStore), is closed by Close after the final sync.
	sink io.Closer
	// store is set on store-backed markets (OpenStore): the segmented
	// sink that owns rotation, checkpoints and compaction.
	store *Store
}

// Store returns the segmented store backing this market, nil for flat
// single-file (OpenFile) and plain-sink (NewMarket) journals.
func (m *Market) Store() *Store { return m.store }

// NewMarket builds a market from cfg and a journal writing to sink,
// writing the genesis record immediately.
func NewMarket(cfg market.Config, sink io.Writer, opts ...Option) (*Market, error) {
	m, err := market.New(cfg)
	if err != nil {
		return nil, err
	}
	w := NewWriter(sink, opts...)
	if err := w.Genesis(cfg); err != nil {
		return nil, err
	}
	return &Market{Market: m, w: w}, nil
}

// OpenFile creates a fresh journaled market logging to path, or — when
// path already holds a journal — rebuilds the market from it and resumes
// appending. The log's genesis configuration wins over cfg on restore:
// mixing configurations would silently diverge the replay. A torn
// trailing record (crash mid-append) is truncated away before appends
// resume, so the file only ever grows from a complete record boundary.
// It returns the number of replayed events.
func OpenFile(cfg market.Config, path string, opts ...Option) (*Market, int, error) {
	if info, err := os.Stat(path); err == nil && info.Size() > 0 {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		m, lastSeq, durable, torn, err := restoreStream(f)
		f.Close()
		if err != nil {
			return nil, 0, err
		}
		if torn {
			if err := repairTornTail(path, durable); err != nil {
				return nil, 0, err
			}
		}
		if m != nil {
			sink, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, 0, err
			}
			jm := Resume(m, sink, lastSeq, opts...)
			jm.sink = sink
			return jm, int(lastSeq) - 1, nil
		}
		// The crash hit the very first record: nothing durable, start
		// a fresh log below.
	}
	sink, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, err
	}
	jm, err := NewMarket(cfg, sink, opts...)
	if err != nil {
		sink.Close()
		return nil, 0, err
	}
	jm.sink = sink
	return jm, 0, nil
}

// Resume wraps an already-restored market with a writer that continues
// an existing log: sink should append to the same file the market was
// restored from, and lastSeq is the sequence number of the log's final
// record (1 + the event count returned by Read, counting genesis).
func Resume(m *market.Market, sink io.Writer, lastSeq int64, opts ...Option) *Market {
	w := NewWriter(sink, opts...)
	w.started = true
	w.seq = lastSeq
	return &Market{Market: m, w: w}
}

// record encodes cmd as its journal event. Every command this file
// builds has a journal form, so a failure is a programming error.
func record(cmd command.Command) Event {
	e, err := EventFromCommand(cmd)
	if err != nil {
		panic(err)
	}
	return e
}

// Apply routes one command through the market and journals it; see
// ApplyCtx. It shadows the embedded market's Apply so command-level
// callers (the wire server, replay tooling) cannot accidentally mutate
// state without persisting it.
func (m *Market) Apply(cmd command.Command) ([]command.Event, error) {
	return m.ApplyCtx(context.Background(), cmd)
}

// ApplyCtx executes cmd against the embedded market and journals the
// applied state change. For every command but BidBatch that means
// journaling on success only. A BidBatch may partially apply — the
// core stops at the first failing bid — so the journal records exactly
// the applied prefix (as an OpBidBatch of the succeeded bids); the
// original command error, if any, is still returned. A journal failure
// takes precedence: the operation applied but did not persist, and the
// caller must know the log is behind the in-memory state.
func (m *Market) ApplyCtx(ctx context.Context, cmd command.Command) ([]command.Event, error) {
	evs, err := m.Market.ApplyCtx(ctx, cmd)
	switch cmd.(type) {
	case command.BidBatch:
		if len(evs) == 0 {
			return evs, err
		}
		bids := make([]command.SubmitBid, len(evs))
		for i, ev := range evs {
			bids[i] = command.SubmitBid{Buyer: ev.Buyer, Dataset: ev.Dataset, Amount: ev.Amount}
		}
		e := record(command.BidBatch{Bids: bids})
		e.Trace = obs.RequestIDFrom(ctx)
		if jerr := m.w.AppendCtx(ctx, e); jerr != nil {
			return evs, jerr
		}
		return evs, err
	case command.Settle:
		return evs, err // never applies; nothing to journal
	default:
		if err != nil {
			return evs, err
		}
		e := record(cmd)
		e.Trace = obs.RequestIDFrom(ctx)
		if jerr := m.w.AppendCtx(ctx, e); jerr != nil {
			return evs, jerr
		}
		return evs, nil
	}
}

// RegisterBuyer journals on success.
func (m *Market) RegisterBuyer(id market.BuyerID) error {
	if err := m.Market.RegisterBuyer(id); err != nil {
		return err
	}
	return m.w.Append(record(command.RegisterBuyer{Buyer: id}))
}

// RegisterSeller journals on success.
func (m *Market) RegisterSeller(id market.SellerID) error {
	if err := m.Market.RegisterSeller(id); err != nil {
		return err
	}
	return m.w.Append(record(command.RegisterSeller{Seller: id}))
}

// UploadDataset journals on success.
func (m *Market) UploadDataset(seller market.SellerID, id market.DatasetID) error {
	if err := m.Market.UploadDataset(seller, id); err != nil {
		return err
	}
	return m.w.Append(record(command.UploadDataset{Seller: seller, Dataset: id}))
}

// ComposeDataset journals on success.
func (m *Market) ComposeDataset(id market.DatasetID, constituents ...market.DatasetID) error {
	if err := m.Market.ComposeDataset(id, constituents...); err != nil {
		return err
	}
	return m.w.Append(record(command.ComposeDataset{Dataset: id, Constituents: constituents}))
}

// SubmitBid journals on success (including losing bids: they move
// engine and wait state).
func (m *Market) SubmitBid(buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	return m.SubmitBidCtx(context.Background(), buyer, dataset, amount)
}

// SubmitBidCtx is SubmitBid with request context: the obs trace rides
// through the market's locking and pricing spans into the journal's
// append and fsync spans, and the journaled event records the request
// ID so operators can join a log record to its trace.
func (m *Market) SubmitBidCtx(ctx context.Context, buyer market.BuyerID, dataset market.DatasetID, amount float64) (market.Decision, error) {
	d, err := m.Market.SubmitBidCtx(ctx, buyer, dataset, amount)
	if err != nil {
		return d, err
	}
	e := record(command.SubmitBid{Buyer: buyer, Dataset: dataset, Amount: amount})
	e.Trace = obs.RequestIDFrom(ctx)
	if err := m.w.AppendCtx(ctx, e); err != nil {
		return d, err
	}
	return d, nil
}

// SubmitBids places a batch of bids and journals the successful ones as
// a single OpBidBatch event. Unlike the unjournaled market's SubmitBids,
// entries execute sequentially in request order: the journal is a total
// order of operations, and replay must reproduce the exact engine state,
// so the batch's application order has to be the recorded order.
func (m *Market) SubmitBids(reqs []market.BidRequest) []market.BidResult {
	return m.SubmitBidsCtx(context.Background(), reqs)
}

// SubmitBidsCtx is SubmitBids with request context; see SubmitBidCtx.
func (m *Market) SubmitBidsCtx(ctx context.Context, reqs []market.BidRequest) []market.BidResult {
	out := make([]market.BidResult, len(reqs))
	bids := make([]command.SubmitBid, 0, len(reqs))
	for i, r := range reqs {
		out[i].Decision, out[i].Err = m.Market.SubmitBidCtx(ctx, r.Buyer, r.Dataset, r.Amount)
		if out[i].Err == nil {
			bids = append(bids, command.SubmitBid{Buyer: r.Buyer, Dataset: r.Dataset, Amount: r.Amount})
		}
	}
	if len(bids) == 0 {
		return out
	}
	e := record(command.BidBatch{Bids: bids})
	e.Trace = obs.RequestIDFrom(ctx)
	if err := m.w.AppendCtx(ctx, e); err != nil {
		// The bids applied but did not persist; surface the journal
		// failure on every applied entry so callers know the log is
		// behind the in-memory state.
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// WithdrawDataset journals on success.
func (m *Market) WithdrawDataset(seller market.SellerID, id market.DatasetID) error {
	if err := m.Market.WithdrawDataset(seller, id); err != nil {
		return err
	}
	return m.w.Append(record(command.WithdrawDataset{Seller: seller, Dataset: id}))
}

// Tick journals the clock advance.
func (m *Market) Tick() (int, error) {
	p := m.Market.Tick()
	return p, m.w.Append(record(command.Tick{}))
}

// OnCommit installs fn as the journal's commit hook; see Writer.OnCommit.
// It is the attachment point for the replication feed: install it after
// building the market but before serving traffic. On a store-backed
// market the store owns the Writer's hook (it drives checkpoints), so
// fn chains after the store's bookkeeping — same ordering guarantees.
func (m *Market) OnCommit(fn func(Event)) {
	if m.store != nil {
		m.store.OnCommit(fn)
		return
	}
	m.w.OnCommit(fn)
}

// LastSeq returns the sequence number of the journal's newest record;
// see Writer.LastSeq.
func (m *Market) LastSeq() int64 {
	return m.w.LastSeq()
}

// Healthy reports whether the market can still accept and persist
// operations: nil while the journal writer is open and unpoisoned, the
// writer's error otherwise. It backs the daemon's readiness probe — a
// market whose journal is poisoned serves reads but must not be sent
// writes. On a store-backed market a failed background checkpoint also
// surfaces here: appends still succeed, but recovery is no longer
// bounded, which is an operational fault.
func (m *Market) Healthy() error {
	if err := m.w.Healthy(); err != nil {
		return err
	}
	if m.store != nil {
		return m.store.Err()
	}
	return nil
}

// Close syncs the journal and, when the journal owns its file, closes
// it. After Close every mutating operation fails with ErrClosed.
func (m *Market) Close() error {
	err := m.w.Close()
	if m.sink != nil {
		if cerr := m.sink.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
