package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
)

// copyStoreDir clones a store directory for destructive surgery.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestStoreCrashRecoveryPrefixConsistency is the segmented analogue of
// the flat-log crash property harness: for many seeds it drives the
// random workload through a store with aggressive rotation and
// checkpointing, then simulates a crash by cutting the final (active)
// segment at file start (a rotation that never wrote its seghead),
// inside the seghead record, at every record boundary, and at sampled
// intra-record offsets — plus a stray checkpoint temp file standing in
// for a crash mid-checkpoint-rename. Every recovery must land exactly
// on the state of some durable prefix of the flat reference log, never
// behind the newest checkpoint, and resume appends cleanly.
func TestStoreCrashRecoveryPrefixConsistency(t *testing.T) {
	const seeds = 24
	const ops = 140
	for s := 0; s < seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig()
			sc := StoreConfig{
				SegmentRecords:  12,
				SegmentBytes:    1 << 20,
				CheckpointEvery: 25,
				RetainSegments:  2, // compaction runs mid-workload, like production
			}
			dir := t.TempDir()
			jm, _, err := OpenStore(cfg, dir, sc)
			if err != nil {
				t.Fatal(err)
			}
			driveWorkload(t, jm, seed, ops)
			if err := jm.Close(); err != nil {
				t.Fatal(err)
			}

			// Reference: the same workload against a flat log gives the
			// state after every prefix of k records.
			_, events := flatReference(t, cfg, seed, ops)
			stateAt := func(seq int64) market.Snapshot {
				t.Helper()
				pm, err := Bootstrap(events[:seq])
				if err != nil {
					t.Fatalf("bootstrap prefix %d: %v", seq, err)
				}
				return pm.Snapshot()
			}

			l, err := listStoreDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(l.segIdx) < 3 || len(l.ckptSeqs) == 0 {
				t.Fatalf("workload too small: %d segments, %d checkpoints", len(l.segIdx), len(l.ckptSeqs))
			}
			ckptSeq := l.ckptSeqs[len(l.ckptSeqs)-1]
			finalSeg := segName(l.segIdx[len(l.segIdx)-1])
			finalBytes, err := os.ReadFile(filepath.Join(dir, finalSeg))
			if err != nil {
				t.Fatal(err)
			}
			headLen := bytes.IndexByte(finalBytes, '\n') + 1
			if headLen == 0 {
				t.Fatalf("final segment %s has no seghead", finalSeg)
			}

			check := func(cut int, plantTmp bool, label string) {
				t.Helper()
				clone := copyStoreDir(t, dir)
				if err := os.Truncate(filepath.Join(clone, finalSeg), int64(cut)); err != nil {
					t.Fatal(err)
				}
				if plantTmp {
					// A crash between a checkpoint temp file's write and
					// its rename leaves the temp behind; recovery must
					// ignore and remove it.
					if err := os.WriteFile(filepath.Join(clone, "ckpt-crash.tmp"),
						[]byte("half a checkpoint"), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				rm, _, err := OpenStore(cfg, clone, sc)
				if err != nil {
					t.Fatalf("%s: reopen: %v", label, err)
				}
				defer rm.Close()
				gotSeq := rm.LastSeq()
				if gotSeq < ckptSeq {
					t.Fatalf("%s: recovered to seq %d, behind checkpoint %d", label, gotSeq, ckptSeq)
				}
				if gotSeq > int64(len(events)) {
					t.Fatalf("%s: recovered to seq %d beyond the %d the workload wrote", label, gotSeq, len(events))
				}
				if d := rm.Snapshot().Diff(stateAt(gotSeq)); d != "" {
					t.Fatalf("%s: recovered state is not the seq-%d prefix state: %s", label, gotSeq, d)
				}
				if plantTmp {
					if _, err := os.Stat(filepath.Join(clone, "ckpt-crash.tmp")); !os.IsNotExist(err) {
						t.Fatalf("%s: stray checkpoint temp survived recovery", label)
					}
				}
				// The repaired store must accept appends.
				if err := rm.RegisterBuyer("post-crash"); err != nil {
					t.Fatalf("%s: append after recovery: %v", label, err)
				}
			}

			// Segment boundary: the active segment vanishes down to an
			// empty file (created, nothing durable — not even its head).
			check(0, false, "empty active segment")
			// Mid-rotation: the seghead record itself is torn.
			if headLen > 1 {
				check(1+int(seed)%(headLen-1), false, "torn seghead")
			}
			// Every record boundary inside the active segment.
			bounds := recordBoundaries(finalBytes[headLen:])
			for k, b := range bounds {
				check(headLen+b, k == 0, fmt.Sprintf("boundary after tail record %d", k+1))
			}
			// Sampled intra-record tears.
			r := rng.New(seed ^ 0xbf58476d1ce4e5b9)
			prev := 0
			for _, b := range bounds {
				if b-prev > 1 {
					cut := prev + 1 + r.Intn(b-prev-1)
					check(headLen+cut, false, fmt.Sprintf("record torn at segment byte %d", headLen+cut))
				}
				prev = b
			}
		})
	}
}

// TestStoreDeletedSegmentCanary is the mutation canary: deleting a
// segment recovery still needs must fail the open, and the error must
// name the missing file — both when the deletion punches a hole in the
// chain and when it silently shortens the head of the chain.
func TestStoreDeletedSegmentCanary(t *testing.T) {
	cfg := testConfig()
	sc := StoreConfig{
		SegmentRecords:  10,
		SegmentBytes:    1 << 20,
		CheckpointEvery: -1, // nothing is covered: every segment is load-bearing
		RetainSegments:  -1,
	}
	dir := t.TempDir()
	jm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, 21, 120)
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segIdx) < 4 {
		t.Fatalf("need >= 4 segments, got %d", len(l.segIdx))
	}

	// Hole in the middle of the chain.
	mid := segName(l.segIdx[len(l.segIdx)/2])
	clone := copyStoreDir(t, dir)
	if err := os.Remove(filepath.Join(clone, mid)); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenStore(cfg, clone, sc)
	if !errors.Is(err, ErrSegmentMissing) {
		t.Fatalf("mid-chain deletion: err=%v, want ErrSegmentMissing", err)
	}
	if !strings.Contains(err.Error(), mid) {
		t.Fatalf("mid-chain deletion error does not name %s: %v", mid, err)
	}

	// Oldest segment deleted: the chain stays contiguous, but replay
	// needs seq 1 and the oldest survivor starts later.
	oldest := segName(l.segIdx[0])
	clone = copyStoreDir(t, dir)
	if err := os.Remove(filepath.Join(clone, oldest)); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenStore(cfg, clone, sc)
	if !errors.Is(err, ErrSegmentMissing) {
		t.Fatalf("oldest-segment deletion: err=%v, want ErrSegmentMissing", err)
	}
	if !strings.Contains(err.Error(), oldest) {
		t.Fatalf("oldest-segment deletion error does not name %s: %v", oldest, err)
	}
	// Read-only recovery trips the same wire.
	if _, _, _, err := RecoverDir(clone); !errors.Is(err, ErrSegmentMissing) {
		t.Fatalf("RecoverDir: err=%v, want ErrSegmentMissing", err)
	}
}

// TestStoreSealedSegmentTornTail: a tear anywhere but the final
// segment cannot be a crash artifact (rotation fsyncs before sealing),
// so recovery must refuse it as corruption rather than silently
// dropping mid-history records.
func TestStoreSealedSegmentTornTail(t *testing.T) {
	cfg := testConfig()
	sc := StoreConfig{SegmentRecords: 10, SegmentBytes: 1 << 20, CheckpointEvery: -1, RetainSegments: -1}
	dir := t.TempDir()
	jm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, 9, 80)
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segIdx) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(l.segIdx))
	}
	sealed := segName(l.segIdx[1])
	path := filepath.Join(dir, sealed)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenStore(cfg, dir, sc)
	if !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("torn sealed segment: err=%v, want ErrStoreCorrupt", err)
	}
	if !strings.Contains(err.Error(), sealed) {
		t.Fatalf("error does not name %s: %v", sealed, err)
	}
}
