package journal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/faultfs"
)

// syncBuffer is a syncable in-memory sink that counts Sync calls, so
// tests can prove group commit amortizes fsyncs across records.
type syncBuffer struct {
	bytes.Buffer
	syncs int
}

func (s *syncBuffer) Sync() error {
	s.syncs++
	return nil
}

// groupWriter builds a started group-commit writer over sink.
func groupWriter(t *testing.T, sink *syncBuffer, window time.Duration) *Writer {
	t.Helper()
	w := NewWriter(sink, WithFsync(), WithGroupCommit(window))
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}
	return w
}

// genesisSize measures the encoded head record, so fault offsets can be
// placed precisely relative to the first body flush.
func genesisSize(t *testing.T) int64 {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}
	return int64(buf.Len())
}

// TestGroupCommitCoalesces hammers a group-commit writer from many
// goroutines and asserts every acknowledged record is durable, the log
// is an unbroken sequence, and the fsync count is strictly below the
// record count (records actually coalesced).
func TestGroupCommitCoalesces(t *testing.T) {
	const goroutines, perG = 8, 40
	var sink syncBuffer
	w := groupWriter(t, &sink, 200*time.Microsecond)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e := Event{Op: OpRegisterBuyer, Buyer: fmt.Sprintf("b%d-%d", g, i)}
				if err := w.Append(e); err != nil {
					t.Errorf("append g%d-%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, _, torn, err := Recover(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean shutdown left a torn tail")
	}
	want := 1 + goroutines*perG
	if len(events) != want {
		t.Fatalf("recovered %d events, want %d", len(events), want)
	}
	seen := map[string]bool{}
	for _, e := range events[1:] {
		seen[e.Buyer] = true
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if id := fmt.Sprintf("b%d-%d", g, i); !seen[id] {
				t.Fatalf("acked record %s missing from the log", id)
			}
		}
	}
	// Genesis syncs never group; the body records must have coalesced.
	if sink.syncs >= want {
		t.Fatalf("%d fsyncs for %d records: no coalescing", sink.syncs, want)
	}
	if w.maxGroup < 2 {
		t.Fatalf("max group size %d: concurrent appends never shared a flush", w.maxGroup)
	}
	t.Logf("%d records, %d fsyncs, %d groups, max group %d",
		want, sink.syncs, w.groups, w.maxGroup)
}

// TestGroupCommitSequentialEquivalence pins that a single sequential
// writer produces byte-identical logs in grouped and per-record mode:
// grouping changes flush boundaries, never record content or order.
func TestGroupCommitSequentialEquivalence(t *testing.T) {
	write := func(opts ...Option) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, opts...)
		if err := w.Genesis(testConfig()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			e := Event{Op: OpBid, Buyer: fmt.Sprintf("b%d", i), Dataset: "d", Amount: float64(10 + i)}
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := write()
	grouped := write(WithGroupCommit(0))
	if !bytes.Equal(plain, grouped) {
		t.Fatal("grouped and per-record logs diverge for the same sequential workload")
	}
}

// TestGroupCommitCloseDrains starts an append whose group is still
// open, closes the writer concurrently, and asserts the append was
// answered (not abandoned) and its record is durable.
func TestGroupCommitCloseDrains(t *testing.T) {
	var sink syncBuffer
	w := groupWriter(t, &sink, 50*time.Millisecond)
	appended := make(chan error, 1)
	go func() {
		appended <- w.Append(Event{Op: OpRegisterBuyer, Buyer: "slow"})
	}()
	// Give the append time to enqueue and start its window.
	time.Sleep(5 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-appended; err != nil {
		t.Fatalf("append during close: %v", err)
	}
	events, _, _, err := Recover(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Buyer != "slow" {
		t.Fatalf("drained append not durable: %d events", len(events))
	}
	if err := w.Append(Event{Op: OpTick}); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

// TestGroupCommitCrashNoAckedLoss is the mid-group crash harness: for
// every fault kind and a sweep of byte offsets, concurrent appends run
// through a fsynced group-commit writer over a faulty sink; after the
// fault the surviving bytes must recover to an unbroken prefix that
// contains every acknowledged record. A group member acked past a cut
// would be durability fraud; a recovered record set with holes would be
// the "silent prefix of a group" failure the writer must never allow.
func TestGroupCommitCrashNoAckedLoss(t *testing.T) {
	const goroutines, perG = 6, 25
	offsets := []int64{0, 1, 63, 128, 300, 511, 777, 1024, 1500, 2048, 3000, 4096, 6000}
	for _, kind := range []faultfs.Kind{faultfs.Truncate, faultfs.Tear, faultfs.Err} {
		for _, off := range offsets {
			t.Run(fmt.Sprintf("%v@%d", kind, off), func(t *testing.T) {
				t.Parallel()
				var disk bytes.Buffer
				fw := faultfs.NewWriter(&disk, kind, off)
				w := NewWriter(fw, WithFsync(), WithGroupCommit(100*time.Microsecond))
				if err := w.Genesis(testConfig()); err != nil {
					// The fault hit the head record; nothing was acked.
					return
				}
				var (
					mu    sync.Mutex
					acked []string
					wg    sync.WaitGroup
				)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							id := fmt.Sprintf("b%d-%d", g, i)
							err := w.Append(Event{Op: OpRegisterBuyer, Buyer: id})
							if err == nil {
								mu.Lock()
								acked = append(acked, id)
								mu.Unlock()
							}
						}
					}(g)
				}
				wg.Wait()
				w.Close() // may fail; the disk bytes below are the truth

				events, _, _, err := Recover(bytes.NewReader(disk.Bytes()))
				if err != nil {
					t.Fatalf("mid-log corruption after %v fault: %v", kind, err)
				}
				durable := map[string]bool{}
				for _, e := range events {
					durable[e.Buyer] = true
				}
				for _, id := range acked {
					if !durable[id] {
						t.Fatalf("acked record %s lost by %v fault at %d (%d acked, %d durable)",
							id, kind, off, len(acked), len(events))
					}
				}
			})
		}
	}
}

// TestGroupCommitFaultFailsWholeGroup forces a multi-record group onto
// a sink that dies mid-flush and asserts the all-or-nothing contract:
// members of the failed group all see the error, and the writer is
// poisoned for everything after.
func TestGroupCommitFaultFailsWholeGroup(t *testing.T) {
	var disk bytes.Buffer
	// The head record survives intact; the first body flush tears.
	fw := faultfs.NewWriter(&disk, faultfs.Tear, genesisSize(t)+20)
	w := NewWriter(fw, WithFsync(), WithGroupCommit(5*time.Millisecond))
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}
	const members = 4
	errs := make(chan error, members)
	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- w.Append(Event{Op: OpRegisterBuyer, Buyer: fmt.Sprintf("b%d", i)})
		}(i)
	}
	wg.Wait()
	close(errs)
	var failed int
	for err := range errs {
		if err != nil {
			failed++
		}
	}
	// At least one group flushed into the tear; every member of each
	// failed group must have been told. With a 5ms window all four
	// appends normally share the one doomed group.
	if failed == 0 {
		t.Fatal("sink tore mid-group but every member was acked")
	}
	if err := w.Append(Event{Op: OpTick}); err == nil {
		t.Fatal("writer accepted an append after a failed group flush")
	}
	if err := w.Healthy(); err == nil {
		t.Fatal("writer reports healthy after a failed group flush")
	}
	// Whatever survived is still a clean prefix.
	if _, _, _, err := Recover(bytes.NewReader(disk.Bytes())); err != nil {
		t.Fatalf("failed group left mid-log corruption: %v", err)
	}
}
