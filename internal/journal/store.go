// Segmented journal storage: a directory of sealed segment files plus
// snapshot checkpoints, replacing the single flat log for production
// retention. The journal Writer above it is unchanged — the Store is an
// io.Writer sink that rotates the file under the Writer's single-Write
// record discipline — so group commit, fsync policy, telemetry and the
// commit hook all work identically over a store.
//
// # Layout
//
//	dir/00000000.seg        segment files, monotone indexes
//	dir/00000001.seg        first line: seghead record (version + base seq)
//	dir/...                 then ordinary journal records, contiguous seq
//	dir/00000000000047.ckpt snapshot checkpoints, named by covered seq
//	dir/*.tmp               in-flight checkpoint/migration; removed on open
//
// A segment's records are exactly the journal byte format the flat log
// uses — concatenating every segment's body (head lines stripped)
// reproduces the flat log byte for byte. The seghead line is store
// metadata, not an Event: it carries the format version and the
// sequence number of the segment's first record, so recovery can chain
// segments and skip sealed ones without scanning them.
//
// # Rotation and durability
//
// The active segment rotates once it holds at least SegmentRecords
// records or SegmentBytes bytes: the old file is fsynced and closed
// (sealed segments therefore never hold a torn tail — a tear before
// the final segment is real corruption), and the new file is created,
// its seghead written, the file and directory fsynced, before the
// record that triggered rotation is written. A group-commit batch is
// one Write, so a group never splits across segments; segments may
// overshoot the thresholds by at most one batch.
//
// # Checkpoints and compaction
//
// Every CheckpointEvery committed records the store snapshots its
// shadow market (advanced by the Writer's commit hook, so the snapshot
// is exactly the state at a committed seq) and writes it to a
// checkpoint file with the temp+rename+dir-fsync discipline — a crash
// leaves either the old checkpoint set or the new one, never a torn
// checkpoint. The file write runs on a background goroutine; only the
// in-memory snapshot extraction happens on the commit path. After a
// checkpoint lands, compaction deletes sealed segments wholly covered
// by it (keeping RetainSegments spares) and old checkpoint files,
// while appends keep flowing.
//
// # Recovery
//
// Recovery is O(tail): open the newest checkpoint, restore its
// snapshot, and stream only the segments holding records past the
// checkpoint seq through Apply — sealed segments wholly covered by the
// checkpoint are skipped using seghead chaining alone, and no
// whole-history []Event slice is ever built. A torn tail in the final
// segment is truncated and the repair fsynced (file then directory); a
// final segment whose own seghead was torn mid-rotation is rebuilt in
// place. A missing segment — compaction gone wrong, operator error —
// fails recovery with the missing file's name.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/market"
)

// Store layout constants.
const (
	segSuffix  = ".seg"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
	opSegHead  = "seghead"
)

// Store-specific sentinel errors.
var (
	// ErrSegmentMissing marks a gap in the segment chain: a segment
	// recovery still needs is gone. The wrapping error names the file.
	ErrSegmentMissing = errors.New("journal: segment missing")
	// ErrStoreCorrupt marks damage no crash can produce: a torn sealed
	// segment, a malformed seghead, an undecodable checkpoint.
	ErrStoreCorrupt = errors.New("journal: store corrupt")
)

// StoreConfig tunes a segmented store. Zero values select defaults.
type StoreConfig struct {
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes (default 8 MiB).
	SegmentBytes int64
	// SegmentRecords rotates the active segment once it holds this many
	// records (default 65536).
	SegmentRecords int64
	// CheckpointEvery writes a snapshot checkpoint every N committed
	// records (default 10000). Negative disables checkpointing (and
	// therefore compaction).
	CheckpointEvery int64
	// RetainSegments is how many checkpoint-covered sealed segments to
	// keep beyond what recovery needs (default 0: delete them all).
	// Negative keeps every segment forever.
	RetainSegments int
	// MigrateFlat, when the directory holds no segments yet and this
	// path names an existing flat journal, absorbs that log verbatim as
	// segment 0 — the upgrade path from -journal to -journal-dir. The
	// flat file itself is left untouched.
	MigrateFlat string
}

func (sc *StoreConfig) applyDefaults() {
	if sc.SegmentBytes == 0 {
		sc.SegmentBytes = 8 << 20
	}
	if sc.SegmentRecords == 0 {
		sc.SegmentRecords = 1 << 16
	}
	if sc.CheckpointEvery == 0 {
		sc.CheckpointEvery = 10000
	}
}

// segHead is the first line of every segment file. It is store
// metadata, not a journal Event: Base is the sequence number of the
// segment's first record, so recovery can chain segments and compute a
// sealed segment's coverage without scanning its body.
type segHead struct {
	Op    string `json:"op"` // always "seghead"
	V     int    `json:"v"`
	Base  int64  `json:"base"`
	Index int64  `json:"index"`
}

// checkpointFile is the on-disk checkpoint format: the full market
// state as of Seq, written atomically (temp+rename+dir-fsync).
type checkpointFile struct {
	V        int             `json:"v"`
	Seq      int64           `json:"seq"`
	Snapshot market.Snapshot `json:"snapshot"`
}

// segMeta is the store's in-memory bookkeeping for one segment.
type segMeta struct {
	index   int64
	base    int64 // seq of the first record
	records int64
	bytes   int64
}

func (m segMeta) maxSeq() int64 { return m.base + m.records - 1 }

func segName(index int64) string { return fmt.Sprintf("%08d%s", index, segSuffix) }
func ckptName(seq int64) string  { return fmt.Sprintf("%014d%s", seq, ckptSuffix) }

// Store is a segmented, checkpointed journal sink. It implements
// io.Writer (with Sync) so a journal Writer appends through it
// unchanged, plus the commit-hook bookkeeping that drives checkpoints.
// Safe for concurrent use.
type Store struct {
	dir string
	sc  StoreConfig

	mu     sync.Mutex
	segs   []segMeta // ascending by index; last is the active segment
	active *os.File
	err    error // sticky store failure
	closed bool

	// Checkpoint state. In leader mode shadow is the store's own
	// market, advanced by the commit hook so snapshots land exactly at
	// a committed seq. In replica mode (replicaShadow) shadow is the
	// follower's serving market, already advanced by the apply loop
	// before each append.
	shadow        *market.Market
	replicaShadow bool
	appliedSeq    int64
	lastCkpt      int64   // newest durable checkpoint seq, 0 = none
	ckpts         []int64 // durable checkpoint seqs, ascending
	sinceCkpt     int64
	ckptBusy      bool

	// downstream is the chained commit observer (the replication
	// feed); called outside mu, in commit order — the Writer
	// serializes commits.
	downstream func(Event)

	wg sync.WaitGroup // in-flight checkpoint writes
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the store's sticky failure, nil while healthy. A failed
// rotation poisons the Writer through the normal sink-error path; a
// failed checkpoint write poisons only the store — appends still
// succeed, but recovery cost is no longer bounded, so readiness probes
// must surface it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LastCheckpoint returns the newest durable checkpoint's seq, 0 when
// none has been written yet.
func (s *Store) LastCheckpoint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCkpt
}

// Checkpoint writes a snapshot checkpoint of the current committed
// state synchronously — the same artifact the background cadence
// produces, followed by the same compaction pass. Operational tooling
// calls it to bound the recovery tail at a known point: before a
// backup, a measured restart, or a benchmark run. An in-flight
// background checkpoint is waited out first; a checkpoint that is
// already current is a no-op.
func (s *Store) Checkpoint() error {
	for {
		s.mu.Lock()
		if s.err != nil {
			defer s.mu.Unlock()
			return s.err
		}
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if !s.ckptBusy {
			break // mu still held
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	if s.shadow == nil || s.appliedSeq == 0 || s.lastCkpt == s.appliedSeq {
		s.mu.Unlock()
		return nil
	}
	snap := s.shadow.Snapshot()
	seq := s.appliedSeq
	s.ckptBusy = true
	s.sinceCkpt = 0
	s.mu.Unlock()
	s.wg.Add(1)
	s.checkpoint(snap, seq)
	return s.Err()
}

// OnCommit chains fn after the store's own commit bookkeeping: fn sees
// every durably committed record in strict order, exactly like
// Writer.OnCommit. This is the replication feed's attachment point on
// a store-backed market.
func (s *Store) OnCommit(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downstream = fn
}

// Write appends one record (or one group-commit batch) to the active
// segment, rotating first when the segment is full. p is whole
// newline-terminated records by the Writer's contract, so counting
// newlines counts records.
func (s *Store) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, ErrClosed
	}
	cur := &s.segs[len(s.segs)-1]
	if cur.records > 0 && (cur.bytes >= s.sc.SegmentBytes || cur.records >= s.sc.SegmentRecords) {
		if err := s.rotateLocked(); err != nil {
			s.err = err
			return 0, err
		}
		cur = &s.segs[len(s.segs)-1]
	}
	n, err := s.active.Write(p)
	if err != nil {
		return n, err // the Writer poisons itself on this
	}
	cur.bytes += int64(n)
	cur.records += int64(bytes.Count(p, []byte{'\n'}))
	return n, nil
}

// Sync fsyncs the active segment (the Writer's WithFsync and Close
// path).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.active == nil {
		return nil
	}
	return s.active.Sync()
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Called with mu held.
func (s *Store) rotateLocked() error {
	cur := s.segs[len(s.segs)-1]
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("journal: sealing %s: %w", segName(cur.index), err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("journal: sealing %s: %w", segName(cur.index), err)
	}
	next := segMeta{index: cur.index + 1, base: cur.base + cur.records}
	f, headLen, err := createSegment(s.dir, next.index, next.base, false)
	if err != nil {
		return err
	}
	next.bytes = headLen
	s.active = f
	s.segs = append(s.segs, next)
	return nil
}

// createSegment creates dir/NNNNNNNN.seg, writes its seghead line, and
// makes both the file content and the directory entry durable before
// any record can land in it. truncate recreates an existing (broken)
// file in place; otherwise creation is exclusive.
func createSegment(dir string, index, base int64, truncate bool) (*os.File, int64, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if truncate {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_EXCL
	}
	path := filepath.Join(dir, segName(index))
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: creating segment: %w", err)
	}
	head, err := json.Marshal(segHead{Op: opSegHead, V: FormatVersion, Base: base, Index: index})
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	head = append(head, '\n')
	if _, err := f.Write(head); err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("journal: writing seghead of %s: %w", segName(index), err)
	}
	return f, int64(len(head)), nil
}

// commit is installed as the journal Writer's commit hook: it advances
// the shadow market, triggers checkpoints, and forwards the record to
// the chained observer (the replication feed). The Writer serializes
// commit calls, so downstream ordering holds even though the call runs
// outside mu.
func (s *Store) commit(e Event) {
	s.mu.Lock()
	if s.replicaShadow {
		s.appliedSeq = e.Seq
	} else if err := s.advanceShadowLocked(e); err != nil && s.err == nil {
		s.err = err
	}
	s.sinceCkpt++
	var snap *market.Snapshot
	var snapSeq int64
	if s.shouldCheckpointLocked() {
		sn := s.shadow.Snapshot()
		snap, snapSeq = &sn, s.appliedSeq
		s.ckptBusy = true
		s.sinceCkpt = 0
	}
	fn := s.downstream
	s.mu.Unlock()
	if snap != nil {
		s.wg.Add(1)
		go s.checkpoint(*snap, snapSeq)
	}
	if fn != nil {
		fn(e)
	}
}

func (s *Store) advanceShadowLocked(e Event) error {
	switch e.Op {
	case OpGenesis, OpSnapshot:
		m, err := marketFromHead(e)
		if err != nil {
			return fmt.Errorf("journal: shadow head: %w", err)
		}
		s.shadow = m
	default:
		if err := applyEvent(s.shadow, e); err != nil {
			return fmt.Errorf("journal: shadow: %w", err)
		}
	}
	s.appliedSeq = e.Seq
	return nil
}

func (s *Store) shouldCheckpointLocked() bool {
	return !s.ckptBusy && s.err == nil && !s.closed &&
		s.sc.CheckpointEvery > 0 && s.sinceCkpt >= s.sc.CheckpointEvery &&
		s.shadow != nil
}

// checkpoint writes one snapshot checkpoint on a background goroutine
// and, on success, kicks compaction. Group commit keeps running: only
// the snapshot extraction happened on the commit path.
func (s *Store) checkpoint(snap market.Snapshot, seq int64) {
	defer s.wg.Done()
	err := writeCheckpointFile(s.dir, seq, snap)
	s.mu.Lock()
	s.ckptBusy = false
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("journal: checkpoint at seq %d: %w", seq, err)
		}
		s.mu.Unlock()
		return
	}
	s.lastCkpt = seq
	s.ckpts = append(s.ckpts, seq)
	s.mu.Unlock()
	s.compactOnce()
}

// writeCheckpointFile lands dir/<seq>.ckpt atomically: build in a
// temporary sibling, fsync it, rename into place, fsync the directory.
func writeCheckpointFile(dir string, seq int64, snap market.Snapshot) error {
	data, err := json.Marshal(checkpointFile{V: FormatVersion, Seq: seq, Snapshot: snap})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, "ckpt-*"+tmpSuffix)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(seq))); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// compactOnce deletes sealed segments wholly covered by the newest
// durable checkpoint (beyond RetainSegments spares) and checkpoint
// files older than the newest two. File removal happens outside mu so
// appends never wait on the filesystem.
func (s *Store) compactOnce() {
	s.mu.Lock()
	if s.sc.RetainSegments < 0 || s.closed {
		s.mu.Unlock()
		return
	}
	covered := 0
	for i := 0; i < len(s.segs)-1; i++ {
		if s.segs[i].maxSeq() <= s.lastCkpt {
			covered++
		} else {
			break
		}
	}
	var doomedSegs []int64
	if drop := covered - s.sc.RetainSegments; drop > 0 {
		for _, m := range s.segs[:drop] {
			doomedSegs = append(doomedSegs, m.index)
		}
		s.segs = append([]segMeta(nil), s.segs[drop:]...)
	}
	var doomedCkpts []int64
	if n := len(s.ckpts); n > 2 {
		doomedCkpts = append(doomedCkpts, s.ckpts[:n-2]...)
		s.ckpts = append([]int64(nil), s.ckpts[n-2:]...)
	}
	s.mu.Unlock()
	removed := false
	for _, idx := range doomedSegs {
		if os.Remove(filepath.Join(s.dir, segName(idx))) == nil {
			removed = true
		}
	}
	for _, seq := range doomedCkpts {
		os.Remove(filepath.Join(s.dir, ckptName(seq)))
	}
	if removed {
		syncDir(s.dir)
	}
}

// Close waits for in-flight checkpoints, then seals the active
// segment. The journal Writer's Close has already synced through the
// store's Sync by the time Market.Close calls this.
func (s *Store) Close() error {
	// A clean shutdown leaves a checkpoint at the final seq (when the
	// cadence is enabled), so the next open replays no tail at all —
	// without it, a burst that outran the background cadence could
	// leave many multiples of CheckpointEvery unsnapshotted. Manual-
	// checkpoint mode (CheckpointEvery < 0) is left alone.
	if s.sc.CheckpointEvery > 0 {
		_ = s.Checkpoint() // a sticky store error resurfaces below
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.err
	active := s.active
	s.active = nil
	s.mu.Unlock()
	s.wg.Wait()
	if active != nil {
		if serr := active.Sync(); err == nil && serr != nil {
			err = serr
		}
		if cerr := active.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// errStopScan aborts a TailEvents scan once the requested upper bound
// has been delivered.
var errStopScan = errors.New("journal: stop scan")

// TailEvents streams the records with afterSeq < seq <= uptoSeq from
// the store's segments, in order — the replication feed's catch-up
// read. It holds the store lock for the duration, so appends stall
// while a subscriber catches up from disk; the records it reads are
// bounded by the checkpoint cadence.
func (s *Store) TailEvents(afterSeq, uptoSeq int64, fn func(Event) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uptoSeq <= afterSeq {
		return nil
	}
	for _, seg := range s.segs {
		if seg.maxSeq() <= afterSeq {
			continue
		}
		if seg.base > uptoSeq {
			break
		}
		err := scanSegment(s.dir, seg, func(e Event) error {
			if e.Seq <= afterSeq {
				return nil
			}
			if e.Seq > uptoSeq {
				return errStopScan
			}
			if err := fn(e); err != nil {
				return err
			}
			if e.Seq == uptoSeq {
				return errStopScan
			}
			return nil
		})
		if errors.Is(err, errStopScan) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CatchupSnapshot returns canonical snapshot bytes and the seq they
// capture, for replication catch-up: the newest durable checkpoint
// file when one exists (no live-state re-encoding, no commit-path
// stall), the shadow market otherwise (a store younger than its first
// checkpoint).
func (s *Store) CatchupSnapshot() ([]byte, int64, error) {
	s.mu.Lock()
	seq := s.lastCkpt
	s.mu.Unlock()
	if seq > 0 {
		ck, err := readCheckpointFile(s.dir, seq)
		if err != nil {
			return nil, 0, err
		}
		data, err := ck.Snapshot.Canonical()
		if err != nil {
			return nil, 0, err
		}
		return data, ck.Seq, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow == nil {
		return nil, 0, errors.New("journal: store has no state to snapshot")
	}
	data, err := s.shadow.Snapshot().Canonical()
	if err != nil {
		return nil, 0, err
	}
	return data, s.appliedSeq, nil
}

func readCheckpointFile(dir string, seq int64) (*checkpointFile, error) {
	name := ckptName(seq)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrStoreCorrupt, name, err)
	}
	if ck.V != FormatVersion {
		return nil, fmt.Errorf("%w: checkpoint %s has version %d", ErrVersion, name, ck.V)
	}
	if ck.Seq != seq {
		return nil, fmt.Errorf("%w: checkpoint %s records seq %d", ErrStoreCorrupt, name, ck.Seq)
	}
	return &ck, nil
}

// scanSegment streams one segment's records (seghead skipped) through
// fn, enforcing seq continuity from the seghead's base. Sealed
// segments are fsynced before the next one is created, so a torn tail
// here is only legal in the store's final segment — callers decide.
func scanSegment(dir string, seg segMeta, fn func(Event) error) error {
	f, err := os.Open(filepath.Join(dir, segName(seg.index)))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if _, err := br.ReadBytes('\n'); err != nil {
		return fmt.Errorf("%w: segment %s seghead: %v", ErrStoreCorrupt, segName(seg.index), err)
	}
	_, _, err = Scan(br, seg.base, fn)
	return err
}
