package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
)

func testConfig() market.Config {
	return market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
		},
		Seed: 7,
	}
}

// driveMarket runs a deterministic mixed workload through a journaling
// market and returns the journal bytes.
func driveMarket(t *testing.T) (*Market, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	m, err := NewMarket(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s2"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s2", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.ComposeDataset("ab", "a", "b"); err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 40; i++ {
		buyer := market.BuyerID(fmt.Sprintf("buyer-%d", i))
		if err := m.RegisterBuyer(buyer); err != nil {
			t.Fatal(err)
		}
		for _, ds := range []market.DatasetID{"a", "b", "ab"} {
			if _, err := m.SubmitBid(buyer, ds, r.Uniform(1, 150)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return m, &buf
}

func TestRestoreRebuildsExactState(t *testing.T) {
	live, buf := driveMarket(t)

	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != live.Revenue() {
		t.Fatalf("revenue: restored %v, live %v", restored.Revenue(), live.Revenue())
	}
	if restored.Period() != live.Period() {
		t.Fatalf("period: restored %d, live %d", restored.Period(), live.Period())
	}
	lt, rt := live.Transactions(), restored.Transactions()
	if len(lt) != len(rt) {
		t.Fatalf("transactions: %d vs %d", len(lt), len(rt))
	}
	for i := range lt {
		if lt[i] != rt[i] {
			t.Fatalf("transaction %d: %+v vs %+v", i, lt[i], rt[i])
		}
	}
	for _, s := range []market.SellerID{"s1", "s2"} {
		lb, _ := live.SellerBalance(s)
		rb, _ := restored.SellerBalance(s)
		if lb != rb {
			t.Fatalf("balance %s: %v vs %v", s, lb, rb)
		}
	}
	// Engines continue identically after restore: next decision matches.
	ld, lerr := live.SubmitBid("buyer-0", "nonexistent", 50)
	rd, rerr := restored.SubmitBid("buyer-0", "nonexistent", 50)
	if (lerr == nil) != (rerr == nil) || ld != rd {
		t.Fatalf("post-restore divergence: %+v/%v vs %+v/%v", ld, lerr, rd, rerr)
	}
	for _, ds := range []market.DatasetID{"a", "b", "ab"} {
		ls, _ := live.Stats(ds)
		rs, _ := restored.Stats(ds)
		if ls != rs {
			t.Fatalf("stats %s: %+v vs %+v", ds, ls, rs)
		}
	}
}

func TestFailedOpsAreNotJournaled(t *testing.T) {
	var buf bytes.Buffer
	m, err := NewMarket(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	linesBefore := strings.Count(buf.String(), "\n")
	// Failing operations must leave the journal untouched.
	if err := m.RegisterBuyer("b"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := m.SubmitBid("b", "missing", 10); err == nil {
		t.Fatal("bid on missing dataset accepted")
	}
	if got := strings.Count(buf.String(), "\n"); got != linesBefore {
		t.Fatalf("journal grew on failed ops: %d -> %d", linesBefore, got)
	}
	// And the journal still restores.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestReadValidation(t *testing.T) {
	_, buf := driveMarket(t)
	good := buf.String()

	// Empty log.
	if _, err := Read(strings.NewReader("")); !errors.Is(err, ErrNoGenesis) {
		t.Errorf("empty log: %v", err)
	}
	// Missing genesis: drop the first line.
	rest := good[strings.Index(good, "\n")+1:]
	if _, err := Read(strings.NewReader(rest)); err == nil {
		t.Error("headless log accepted")
	}
	// Sequence gap: drop a middle line.
	lines := strings.Split(strings.TrimRight(good, "\n"), "\n")
	gapped := strings.Join(append(append([]string{}, lines[:5]...), lines[6:]...), "\n")
	if _, err := Read(strings.NewReader(gapped)); !errors.Is(err, ErrSeqGap) {
		t.Errorf("gapped log: %v", err)
	}
	// Corrupt JSON.
	corrupt := good + "{not json\n"
	if _, err := Read(strings.NewReader(corrupt)); !errors.Is(err, ErrBadEvent) {
		t.Errorf("corrupt log: %v", err)
	}
	// Intact log round-trips.
	events, err := Read(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || events[0].Op != OpGenesis || events[0].Config.Seed != testConfig().Seed {
		t.Fatalf("read: %d events, head %+v", len(events), events[0])
	}
}

func TestWriterRules(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Event{Op: OpTick}); !errors.Is(err, ErrNoGenesis) {
		t.Errorf("append before genesis: %v", err)
	}
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}
	if err := w.Genesis(testConfig()); !errors.Is(err, ErrDoubleStart) {
		t.Errorf("double genesis: %v", err)
	}
	if err := w.Append(Event{Op: OpGenesis}); !errors.Is(err, ErrDoubleStart) {
		t.Errorf("appended genesis: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Op: OpTick}); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	// A log whose bid references an unregistered buyer must fail replay.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Genesis(testConfig()); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Op: OpBid, Buyer: "ghost", Dataset: "d", Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrReplay) {
		t.Fatalf("diverging log: %v", err)
	}
	// Unknown op.
	m := market.MustNew(testConfig())
	err := Replay(m, []Event{{Seq: 1, Op: "warp"}})
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("unknown op: %v", err)
	}
}

func TestRestoreRejectsBadGenesisConfig(t *testing.T) {
	log := `{"seq":1,"op":"genesis","config":{"Engine":{"EpochSize":0},"Seed":1}}` + "\n"
	if _, err := Restore(strings.NewReader(log)); err == nil {
		t.Fatal("invalid genesis config accepted")
	}
}

func TestCompactPreservesState(t *testing.T) {
	live, buf := driveMarket(t)

	var compacted bytes.Buffer
	if err := Compact(bytes.NewReader(buf.Bytes()), &compacted); err != nil {
		t.Fatal(err)
	}
	// The compacted log is a single snapshot record.
	events, err := Read(bytes.NewReader(compacted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Op != OpSnapshot {
		t.Fatalf("compacted log has %d events, head %v", len(events), events[0].Op)
	}
	restored, err := Restore(bytes.NewReader(compacted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != live.Revenue() {
		t.Fatalf("revenue %v vs %v", restored.Revenue(), live.Revenue())
	}
	if len(restored.Transactions()) != len(live.Transactions()) {
		t.Fatal("transactions differ after compaction")
	}
	// Future decisions stay identical across the original replay and the
	// compacted snapshot.
	fromLog, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		amount := 1 + float64(i%140)
		d1, e1 := fromLog.SubmitBid("buyer-0", "b", amount)
		d2, e2 := restored.SubmitBid("buyer-0", "b", amount)
		if d1 != d2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("bid %d diverged after compaction: %+v/%v vs %+v/%v", i, d1, e1, d2, e2)
		}
		fromLog.Tick()
		restored.Tick()
	}
}

func TestCompactFileAndResume(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.log"
	jm, _, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := jm.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := jm.SubmitBid("b", "d", 500); err != nil {
		t.Fatal(err)
	}
	revenue := jm.Revenue()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	if err := CompactFile(path); err != nil {
		t.Fatal(err)
	}

	// Reopen the compacted journal and keep trading.
	jm2, replayed, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("compacted journal replayed %d tail events", replayed)
	}
	if jm2.Revenue() != revenue {
		t.Fatalf("revenue after compaction: %v vs %v", jm2.Revenue(), revenue)
	}
	if err := jm2.RegisterBuyer("b2"); err != nil {
		t.Fatal(err)
	}
	if _, err := jm2.SubmitBid("b2", "d", 500); err != nil {
		t.Fatal(err)
	}
	if err := jm2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: snapshot head plus appended tail replays cleanly.
	m3, err := Restore(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Transactions()) != 2 {
		t.Fatalf("transactions after compact+resume: %d", len(m3.Transactions()))
	}
}

func mustOpen(t *testing.T, path string) *bytes.Reader {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func TestSnapshotHeadWriterRules(t *testing.T) {
	live, _ := driveMarket(t)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Snapshot(live.Market.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(live.Market.Snapshot()); !errors.Is(err, ErrDoubleStart) {
		t.Fatalf("double snapshot head: %v", err)
	}
	if err := w.Append(Event{Op: OpSnapshot}); !errors.Is(err, ErrDoubleStart) {
		t.Fatalf("appended snapshot: %v", err)
	}
	if err := w.Append(Event{Op: OpTick}); err != nil {
		t.Fatal(err)
	}
}

func TestWithdrawIsJournaled(t *testing.T) {
	var buf bytes.Buffer
	m, err := NewMarket(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	if err := m.WithdrawDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	// Failed withdrawals are not journaled.
	lines := strings.Count(buf.String(), "\n")
	if err := m.WithdrawDataset("s", "d"); err == nil {
		t.Fatal("double withdraw accepted")
	}
	if strings.Count(buf.String(), "\n") != lines {
		t.Fatal("failed withdraw journaled")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range restored.Datasets() {
		if d == "d" {
			t.Fatal("withdrawn dataset survived replay")
		}
	}
}

func TestRandomOpSequencesReplayExactly(t *testing.T) {
	// Property: any sequence of successful market operations, journaled
	// and replayed, reconstructs identical books.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var buf bytes.Buffer
		m, err := NewMarket(testConfig(), &buf)
		if err != nil {
			return false
		}
		sellers := []market.SellerID{"s1", "s2"}
		for _, s := range sellers {
			if err := m.RegisterSeller(s); err != nil {
				return false
			}
		}
		var datasets []market.DatasetID
		var buyersList []market.BuyerID
		for op := 0; op < 80; op++ {
			switch r.Intn(6) {
			case 0:
				id := market.DatasetID(fmt.Sprintf("d%d", len(datasets)))
				if err := m.UploadDataset(sellers[r.Intn(2)], id); err == nil {
					datasets = append(datasets, id)
				}
			case 1:
				if len(datasets) >= 2 {
					id := market.DatasetID(fmt.Sprintf("c%d", op))
					a := datasets[r.Intn(len(datasets))]
					b := datasets[r.Intn(len(datasets))]
					if a != b {
						if err := m.ComposeDataset(id, a, b); err == nil {
							datasets = append(datasets, id)
						}
					}
				}
			case 2:
				id := market.BuyerID(fmt.Sprintf("b%d", len(buyersList)))
				if err := m.RegisterBuyer(id); err == nil {
					buyersList = append(buyersList, id)
				}
			case 3, 4:
				if len(buyersList) > 0 && len(datasets) > 0 {
					// Errors (waits, rebuys, cadence) are expected and
					// must not be journaled.
					m.SubmitBid(buyersList[r.Intn(len(buyersList))],
						datasets[r.Intn(len(datasets))], r.Uniform(1, 150))
				}
			case 5:
				if _, err := m.Tick(); err != nil {
					return false
				}
			}
		}
		if err := m.Close(); err != nil {
			return false
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if restored.Revenue() != m.Revenue() || restored.Period() != m.Period() {
			return false
		}
		lt, rt := m.Transactions(), restored.Transactions()
		if len(lt) != len(rt) {
			return false
		}
		for i := range lt {
			if lt[i] != rt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBidBatchJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m, err := NewMarket(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	for _, ds := range []market.DatasetID{"a", "b", "c"} {
		if err := m.UploadDataset("s", ds); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range []market.BuyerID{"b1", "b2", "b3"} {
		if err := m.RegisterBuyer(b); err != nil {
			t.Fatal(err)
		}
	}

	// A batch mixing successes and failures: only successes are recorded.
	res := m.SubmitBids([]market.BidRequest{
		{Buyer: "b1", Dataset: "a", Amount: 60},
		{Buyer: "b2", Dataset: "b", Amount: 80},
		{Buyer: "ghost", Dataset: "a", Amount: 50}, // unknown buyer
		{Buyer: "b3", Dataset: "c", Amount: 120},
	})
	if res[0].Err != nil || res[1].Err != nil || res[3].Err != nil {
		t.Fatalf("unexpected bid errors: %+v", res)
	}
	if !errors.Is(res[2].Err, market.ErrUnknownBuyer) {
		t.Fatalf("entry 2 error = %v, want ErrUnknownBuyer", res[2].Err)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	// A second batch after the tick keeps the clock-relative state honest.
	m.SubmitBids([]market.BidRequest{
		{Buyer: "b1", Dataset: "b", Amount: 90},
		{Buyer: "b2", Dataset: "c", Amount: 40},
	})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]BatchBid
	for _, e := range events {
		if e.Op == OpBidBatch {
			batches = append(batches, e.Bids)
		}
	}
	if len(batches) != 2 {
		t.Fatalf("journaled %d batch events, want 2", len(batches))
	}
	if len(batches[0]) != 3 {
		t.Fatalf("first batch recorded %d bids, want 3 (failed entry must be dropped)", len(batches[0]))
	}
	want := []BatchBid{
		{Buyer: "b1", Dataset: "a", Amount: 60},
		{Buyer: "b2", Dataset: "b", Amount: 80},
		{Buyer: "b3", Dataset: "c", Amount: 120},
	}
	for i, b := range batches[0] {
		if b != want[i] {
			t.Fatalf("batch entry %d = %+v, want %+v", i, b, want[i])
		}
	}

	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Revenue() != m.Revenue() {
		t.Fatalf("revenue: restored %v, live %v", restored.Revenue(), m.Revenue())
	}
	lt, rt := m.Transactions(), restored.Transactions()
	if len(lt) != len(rt) {
		t.Fatalf("transactions: %d vs %d", len(lt), len(rt))
	}
	for i := range lt {
		if lt[i] != rt[i] {
			t.Fatalf("transaction %d: %+v vs %+v", i, lt[i], rt[i])
		}
	}
	for _, ds := range []market.DatasetID{"a", "b", "c"} {
		ls, _ := m.Stats(ds)
		rs, _ := restored.Stats(ds)
		if ls != rs {
			t.Fatalf("stats %s: %+v vs %+v", ds, ls, rs)
		}
	}
}

func TestBidBatchReplayDivergenceDetected(t *testing.T) {
	cfg := testConfig()
	m, err := market.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = Replay(m, []Event{{
		Seq: 2, Op: OpBidBatch,
		Bids: []BatchBid{{Buyer: "nobody", Dataset: "nothing", Amount: 10}},
	}})
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("replay error = %v, want ErrReplay", err)
	}
}
