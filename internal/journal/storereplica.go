// Replica-mode stores: the local segment directory a replication
// follower persists through, so a cold restart resumes from its own
// durable seq instead of re-snapshotting from the leader. The follower
// applies each replicated command to its serving market first, then
// appends the record here; the serving market doubles as the store's
// checkpoint shadow (there is no journal Writer on a follower — the
// replication stream is the writer).
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/datamarket/shield/internal/market"
)

// ReplicaStore is a follower's local segmented store. Append and Reset
// are called from the follower's single apply loop; the read-side
// accessors are safe to call concurrently with it.
type ReplicaStore struct {
	st *Store

	mu   sync.Mutex
	buf  bytes.Buffer
	enc  *json.Encoder
	next int64 // seq the next appended record must carry
}

// OpenReplicaStore opens (or creates) a follower's local store and
// recovers whatever state it holds: the newest checkpoint plus the
// segment tail, exactly like leader recovery. It returns the restored
// serving market (nil when the store is empty — the follower's first
// catch-up will Reset it) and the seq of the newest durable record.
func OpenReplicaStore(dir string, sc StoreConfig) (*ReplicaStore, *market.Market, int64, error) {
	sc.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	st, err := recoverStoreDir(dir, false)
	if err != nil {
		return nil, nil, 0, err
	}
	s := &Store{dir: dir, sc: sc, segs: st.segs, ckpts: st.ckpts, lastCkpt: st.lastCkpt, replicaShadow: true}
	rs := &ReplicaStore{st: s}
	rs.enc = json.NewEncoder(&rs.buf)
	if st.m == nil {
		// Empty (or unrecoverable-fresh) store: no active segment yet;
		// Reset creates the chain once the first snapshot arrives.
		return rs, nil, 0, nil
	}
	if err := s.attachTail(st); err != nil {
		return nil, nil, 0, err
	}
	s.shadow = st.m
	s.appliedSeq = st.lastSeq
	s.sinceCkpt = st.lastSeq - st.lastCkpt
	rs.next = st.lastSeq + 1
	return rs, st.m, st.lastSeq, nil
}

// Reset wipes the store and reseeds it from a leader snapshot: every
// segment and checkpoint is deleted, the snapshot lands synchronously
// as the checkpoint at seq, and a fresh segment 0 opens at seq+1. It
// returns the restored market, which becomes both the follower's
// serving view and the store's checkpoint shadow.
func (rs *ReplicaStore) Reset(snap market.Snapshot, seq int64) (*market.Market, error) {
	m, err := market.RestoreSnapshot(snap)
	if err != nil {
		return nil, err
	}
	s := rs.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	l, err := listStoreDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, idx := range l.segIdx {
		os.Remove(filepath.Join(s.dir, segName(idx)))
	}
	for _, cs := range l.ckptSeqs {
		os.Remove(filepath.Join(s.dir, ckptName(cs)))
	}
	for _, tmp := range l.tmps {
		os.Remove(filepath.Join(s.dir, tmp))
	}
	if err := syncDir(s.dir); err != nil {
		return nil, err
	}
	if err := writeCheckpointFile(s.dir, seq, snap); err != nil {
		return nil, fmt.Errorf("journal: replica reset checkpoint: %w", err)
	}
	f, headLen, err := createSegment(s.dir, 0, seq+1, false)
	if err != nil {
		return nil, err
	}
	s.segs = []segMeta{{index: 0, base: seq + 1, bytes: headLen}}
	s.active = f
	s.ckpts = []int64{seq}
	s.lastCkpt = seq
	s.shadow = m
	s.appliedSeq = seq
	s.sinceCkpt = 0
	s.err = nil
	rs.mu.Lock()
	rs.next = seq + 1
	rs.mu.Unlock()
	return m, nil
}

// Append persists one replicated record after the follower applied it
// to the serving market. Rotation and checkpointing work exactly as on
// the leader; the periodic checkpoint snapshots the serving market at
// the just-applied seq. Append failures are sticky — the follower
// keeps serving from memory, but the store stops accepting records and
// reports the fault through Err.
func (rs *ReplicaStore) Append(e Event) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.next == 0 {
		return fmt.Errorf("journal: replica store has no chain yet (missing Reset)")
	}
	if e.Seq != rs.next {
		return fmt.Errorf("%w: replica append seq %d, want %d", ErrSeqGap, e.Seq, rs.next)
	}
	rs.buf.Reset()
	if err := rs.enc.Encode(e); err != nil {
		return err
	}
	if _, err := rs.st.Write(rs.buf.Bytes()); err != nil {
		rs.st.mu.Lock()
		if rs.st.err == nil {
			rs.st.err = err
		}
		rs.st.mu.Unlock()
		return err
	}
	rs.next++
	rs.st.commit(e)
	return nil
}

// AppliedSeq returns the seq of the newest record the store accepted
// (0 when empty).
func (rs *ReplicaStore) AppliedSeq() int64 {
	rs.st.mu.Lock()
	defer rs.st.mu.Unlock()
	return rs.st.appliedSeq
}

// Err surfaces the store's sticky failure; see Store.Err.
func (rs *ReplicaStore) Err() error { return rs.st.Err() }

// Store exposes the underlying store for inventory reporting.
func (rs *ReplicaStore) Store() *Store { return rs.st }

// Close seals the store.
func (rs *ReplicaStore) Close() error { return rs.st.Close() }
