package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/faultfs"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
)

// driveWorkload applies the seeded mixed workload to an already-built
// journaled market. Both the store under test and its flat-log
// reference run this with the same seed, so their record streams are
// identical byte for byte — the backbone of every equivalence check in
// this file.
func driveWorkload(t *testing.T, m *Market, seed uint64, ops int) {
	t.Helper()
	r := rng.New(seed)
	var (
		sellers             []market.SellerID
		buyers              []market.BuyerID
		datasets            []market.DatasetID
		nUploads, nComposed int
	)
	addSeller := func() {
		id := market.SellerID(fmt.Sprintf("s%d", len(sellers)))
		if m.RegisterSeller(id) == nil {
			sellers = append(sellers, id)
		}
	}
	addBuyer := func() {
		id := market.BuyerID(fmt.Sprintf("b%d", len(buyers)))
		if m.RegisterBuyer(id) == nil {
			buyers = append(buyers, id)
		}
	}
	upload := func() {
		if len(sellers) == 0 {
			return
		}
		id := market.DatasetID(fmt.Sprintf("d%d", nUploads))
		nUploads++
		if m.UploadDataset(sellers[r.Intn(len(sellers))], id) == nil {
			datasets = append(datasets, id)
		}
	}
	addSeller()
	addBuyer()
	upload()
	for op := 0; op < ops; op++ {
		switch r.Intn(11) {
		case 0:
			addSeller()
		case 1:
			addBuyer()
		case 2, 3:
			upload()
		case 4:
			if len(datasets) >= 2 {
				a := datasets[r.Intn(len(datasets))]
				b := datasets[r.Intn(len(datasets))]
				if a != b {
					id := market.DatasetID(fmt.Sprintf("c%d", nComposed))
					nComposed++
					if m.ComposeDataset(id, a, b) == nil {
						datasets = append(datasets, id)
					}
				}
			}
		case 5, 6, 7:
			if len(buyers) > 0 && len(datasets) > 0 {
				m.SubmitBid(buyers[r.Intn(len(buyers))],
					datasets[r.Intn(len(datasets))], r.Uniform(1, 150))
			}
		case 8:
			if len(buyers) > 0 && len(datasets) > 0 {
				n := 2 + r.Intn(4)
				reqs := make([]market.BidRequest, 0, n)
				for i := 0; i < n; i++ {
					reqs = append(reqs, market.BidRequest{
						Buyer:   buyers[r.Intn(len(buyers))],
						Dataset: datasets[r.Intn(len(datasets))],
						Amount:  r.Uniform(1, 150),
					})
				}
				m.SubmitBids(reqs)
			}
		case 9:
			m.Tick()
		case 10:
			if len(datasets) > 0 && len(sellers) > 0 {
				m.WithdrawDataset(sellers[r.Intn(len(sellers))],
					datasets[r.Intn(len(datasets))])
			}
		}
	}
}

// flatReference runs the same workload against a flat in-memory log
// and returns the log bytes plus the parsed events.
func flatReference(t *testing.T, cfg market.Config, seed uint64, ops int) ([]byte, []Event) {
	t.Helper()
	var buf bytes.Buffer
	jm, err := NewMarket(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), events
}

// storeBody concatenates every segment's records (seghead lines
// stripped), which must reproduce the flat log byte for byte when no
// segment has been compacted away.
func storeBody(t *testing.T, dir string) []byte {
	t.Helper()
	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, idx := range l.segIdx {
		data, err := os.ReadFile(filepath.Join(dir, segName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			out = append(out, data[i+1:]...)
		}
	}
	return out
}

func smallStoreConfig() StoreConfig {
	return StoreConfig{
		SegmentRecords:  16,
		SegmentBytes:    1 << 20,
		CheckpointEvery: 40,
		RetainSegments:  -1, // keep everything: byte-equivalence checks need the full chain
	}
}

// TestStoreRoundTrip: a store-backed market journals the exact same
// record stream as a flat log, rotates segments, writes checkpoints,
// and reopens to identical state with a bounded tail replay.
func TestStoreRoundTrip(t *testing.T) {
	const seed, ops = 7, 400
	cfg := testConfig()
	dir := t.TempDir()
	jm, replayed, err := OpenStore(cfg, dir, smallStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh store replayed %d", replayed)
	}
	driveWorkload(t, jm, seed, ops)
	wantSnap := jm.Snapshot()
	lastSeq := jm.LastSeq()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	flat, _ := flatReference(t, cfg, seed, ops)
	if got := storeBody(t, dir); !bytes.Equal(got, flat) {
		t.Fatalf("segment bodies (%d bytes) differ from flat log (%d bytes)", len(got), len(flat))
	}

	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segIdx) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(l.segIdx))
	}
	if len(l.ckptSeqs) == 0 {
		t.Fatal("expected checkpoints")
	}

	jm2, replayed, err := OpenStore(cfg, dir, smallStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jm2.Close()
	if jm2.LastSeq() != lastSeq {
		t.Fatalf("reopen LastSeq=%d, want %d", jm2.LastSeq(), lastSeq)
	}
	if d := jm2.Snapshot().Diff(wantSnap); d != "" {
		t.Fatalf("reopen state: %s", d)
	}
	// Bounded tail: the replay may not exceed the records past the
	// newest checkpoint (modulo the covered records inside the final
	// scanned segments, bounded by segment size).
	maxTail := int(smallStoreConfig().CheckpointEvery + 2*smallStoreConfig().SegmentRecords)
	if replayed > maxTail {
		t.Fatalf("reopen replayed %d records, bound is %d", replayed, maxTail)
	}
	// And appending must still work.
	if err := jm2.RegisterBuyer("post-reopen"); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCompaction: with default retention, sealed segments wholly
// covered by a checkpoint are deleted in the background while the
// market keeps appending, and recovery still lands on the full state.
func TestStoreCompaction(t *testing.T) {
	const seed, ops = 11, 400
	cfg := testConfig()
	dir := t.TempDir()
	sc := smallStoreConfig()
	sc.RetainSegments = 0
	jm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	wantSnap := jm.Snapshot()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.segIdx[0] == 0 {
		t.Fatalf("no segment was compacted away (oldest still %s, %d segments)",
			segName(l.segIdx[0]), len(l.segIdx))
	}
	if n := len(l.ckptSeqs); n > 2 {
		t.Fatalf("%d checkpoint files retained, want <= 2", n)
	}
	m, _, _, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Diff(wantSnap); d != "" {
		t.Fatalf("post-compaction recovery: %s", d)
	}
}

// TestStoreGroupCommit: the store composes with group commit —
// concurrent appends rotate and checkpoint safely, and the reopened
// state matches.
func TestStoreGroupCommit(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	sc := smallStoreConfig()
	jm, _, err := OpenStore(cfg, dir, sc, WithGroupCommit(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := jm.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := market.BuyerID(fmt.Sprintf("b%d-%d", w, i))
				if err := jm.RegisterBuyer(id); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				jm.SubmitBid(id, "d", 10+float64(i))
			}
		}(w)
	}
	wg.Wait()
	wantSnap := jm.Snapshot()
	lastSeq := jm.LastSeq()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	m, gotSeq, _, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != lastSeq {
		t.Fatalf("recovered seq %d, want %d", gotSeq, lastSeq)
	}
	if d := m.Snapshot().Diff(wantSnap); d != "" {
		t.Fatal(d)
	}
}

// TestStoreMigrateFlat: a flat log (current format) absorbed as
// segment 0 replays to the same state, and subsequent appends land in
// the store.
func TestStoreMigrateFlat(t *testing.T) {
	const seed, ops = 3, 120
	cfg := testConfig()
	flatPath := filepath.Join(t.TempDir(), "flat.log")
	jm, _, err := OpenFile(cfg, flatPath)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	wantSnap := jm.Snapshot()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	flatBytes, err := os.ReadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sc := smallStoreConfig()
	sc.MigrateFlat = flatPath
	sm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	if d := sm.Snapshot().Diff(wantSnap); d != "" {
		t.Fatalf("migrated state: %s", d)
	}
	// Segment 0 holds the flat log verbatim.
	if got := storeBody(t, dir); !bytes.Equal(got, flatBytes) {
		t.Fatal("migrated segment 0 is not the flat log verbatim")
	}
	if err := sm.RegisterBuyer("migrated"); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with MigrateFlat still set must NOT re-migrate.
	sm2, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer sm2.Close()
	if _, err := sm2.BuyerSpend("migrated"); err != nil {
		t.Fatalf("post-migration append lost on reopen: %v", err)
	}
}

// TestStoreMigrateLegacyV0 absorbs the frozen pre-versioning fixture:
// the v0 bytes ride into segment 0 untouched and replay through the
// same upgrade path the flat reader uses.
func TestStoreMigrateLegacyV0(t *testing.T) {
	legacy, err := os.ReadFile(legacyLogPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Restore(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sc := smallStoreConfig()
	sc.MigrateFlat = legacyLogPath
	sm, _, err := OpenStore(market.Config{}, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if d := sm.Snapshot().Diff(want.Snapshot()); d != "" {
		t.Fatalf("legacy migration: %s", d)
	}
	if got := storeBody(t, dir); !bytes.Equal(got, legacy) {
		t.Fatal("legacy bytes did not survive migration verbatim")
	}
}

// TestOpenFileTornTailSyncFailure is the satellite regression for the
// recovery-durability fix: OpenFile must fsync the truncated file and
// its directory, and a failure in that sync path must fail the open —
// silently resuming on a repair that might not be durable would risk
// mid-log corruption after the next crash.
func TestOpenFileTornTailSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.log")
	jm, _, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"tick"`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	old := syncFileHook
	syncFileHook = func(*os.File) error { return faultfs.ErrInjected }
	_, _, err = OpenFile(testConfig(), path)
	syncFileHook = old
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("open with failing tail-repair sync: err=%v, want ErrInjected", err)
	}
	// With the sync healthy again the same open succeeds and the torn
	// bytes are gone for good.
	jm2, replayed, err := OpenFile(testConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer jm2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d, want 1", replayed)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"seq":3,"op":"tick"`)) {
		t.Fatal("torn bytes survived repair")
	}
}

// TestReplicaStoreRoundTrip: reset from a snapshot, append a tail,
// reopen cold, resume from local seq.
func TestReplicaStoreRoundTrip(t *testing.T) {
	cfg := testConfig()
	leader, err := market.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := leader.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	snap := leader.Snapshot()

	dir := t.TempDir()
	sc := StoreConfig{SegmentRecords: 4, CheckpointEvery: 8, RetainSegments: -1}
	rs, m0, applied, err := OpenReplicaStore(dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	if m0 != nil || applied != 0 {
		t.Fatalf("empty replica store returned market=%v applied=%d", m0, applied)
	}
	m, err := rs.Reset(snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Apply + persist a tail of records, crossing a rotation.
	for i := 0; i < 10; i++ {
		cmd := command.RegisterBuyer{Buyer: market.BuyerID(fmt.Sprintf("b%d", i))}
		if _, err := m.Apply(cmd); err != nil {
			t.Fatal(err)
		}
		e, err := EventFromCommand(cmd)
		if err != nil {
			t.Fatal(err)
		}
		e.Seq = 11 + int64(i)
		if err := rs.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := rs.AppliedSeq(); got != 20 {
		t.Fatalf("applied seq %d, want 20", got)
	}
	wantSnap := m.Snapshot()
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	rs2, m2, applied, err := OpenReplicaStore(dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if applied != 20 {
		t.Fatalf("cold restart applied=%d, want 20", applied)
	}
	if d := m2.Snapshot().Diff(wantSnap); d != "" {
		t.Fatalf("cold restart state: %s", d)
	}
	// A gap must be rejected, the next contiguous seq accepted.
	e, _ := EventFromCommand(command.Tick{})
	e.Seq = 25
	if err := rs2.Append(e); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap append: %v, want ErrSeqGap", err)
	}
	if _, err := m2.Apply(command.Tick{}); err != nil {
		t.Fatal(err)
	}
	e.Seq = 21
	if err := rs2.Append(e); err != nil {
		t.Fatal(err)
	}
}

// TestStoreInventory pins the inventory surfaces: the live Inventory
// and the offline InspectDir agree on segments, checkpoints, coverage,
// and seq bounds.
func TestStoreInventory(t *testing.T) {
	const seed, ops = 5, 300
	cfg := testConfig()
	dir := t.TempDir()
	jm, _, err := OpenStore(cfg, dir, smallStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	lastSeq := jm.LastSeq()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waited out in-flight checkpoints, so the live metadata and
	// the on-disk truth have converged.
	live := jm.Store().Inventory()
	if live.LastSeq != lastSeq {
		t.Fatalf("live inventory LastSeq=%d, want %d", live.LastSeq, lastSeq)
	}
	if live.FirstSeq != 1 || len(live.Segments) < 3 || live.LastCheckpoint == 0 {
		t.Fatalf("implausible live inventory: %+v", live)
	}
	inv, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if inv.LastSeq != lastSeq || inv.FirstSeq != live.FirstSeq || inv.LastCheckpoint != live.LastCheckpoint {
		t.Fatalf("InspectDir disagrees with live inventory:\noffline %+v\nlive    %+v", inv, live)
	}
	if len(inv.Segments) != len(live.Segments) {
		t.Fatalf("segment counts differ: offline %d, live %d", len(inv.Segments), len(live.Segments))
	}
	var sawCovered bool
	for i, seg := range inv.Segments {
		if seg.Records != live.Segments[i].Records || seg.Base != live.Segments[i].Base {
			t.Fatalf("segment %s: offline %+v, live %+v", seg.Name, seg, live.Segments[i])
		}
		if seg.Covered {
			sawCovered = true
			if !seg.Sealed {
				t.Fatalf("active segment %s reported covered", seg.Name)
			}
		}
	}
	if !sawCovered {
		t.Fatal("no segment reported covered despite checkpoints")
	}
	if !strings.HasPrefix(inv.Segments[0].Name, "0000") {
		t.Fatalf("unexpected segment name %q", inv.Segments[0].Name)
	}
}

// TestStoreCheckpointOnly: with checkpointing disabled the store still
// rotates and recovers (by replaying everything), proving the
// checkpoint path is an optimization, not a correctness dependency.
// TestStoreManualCheckpoint: Store.Checkpoint writes a synchronous
// checkpoint at the current committed seq even with the background
// cadence disabled, a second call with nothing new is a no-op, and a
// reopened store replays zero tail records past it.
func TestStoreManualCheckpoint(t *testing.T) {
	const seed, ops = 17, 120
	cfg := testConfig()
	dir := t.TempDir()
	sc := smallStoreConfig()
	sc.CheckpointEvery = -1
	jm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	if err := jm.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := jm.LastSeq()
	if got := jm.Store().LastCheckpoint(); got != want {
		t.Fatalf("manual checkpoint landed at seq %d, committed seq %d", got, want)
	}
	inv := jm.Store().Inventory()
	if len(inv.Checkpoints) != 1 {
		t.Fatalf("%d checkpoint files after one manual checkpoint", len(inv.Checkpoints))
	}
	if err := jm.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if again := jm.Store().Inventory(); len(again.Checkpoints) != 1 {
		t.Fatalf("no-op re-checkpoint wrote %d files", len(again.Checkpoints))
	}
	snap := jm.Snapshot()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}

	m, seq, replayed, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != want || replayed != 0 {
		t.Fatalf("recovery reached seq %d replaying %d records, want seq %d with 0", seq, replayed, want)
	}
	if d := m.Snapshot().Diff(snap); d != "" {
		t.Fatal(d)
	}

	// A closed store refuses further checkpoints.
	jm2, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	st := jm2.Store()
	if err := jm2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
}

func TestStoreNoCheckpoints(t *testing.T) {
	const seed, ops = 13, 200
	cfg := testConfig()
	dir := t.TempDir()
	sc := smallStoreConfig()
	sc.CheckpointEvery = -1
	jm, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, jm, seed, ops)
	want := jm.Snapshot()
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := listStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.ckptSeqs) != 0 {
		t.Fatalf("checkpoints written while disabled: %v", l.ckptSeqs)
	}
	jm2, _, err := OpenStore(cfg, dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer jm2.Close()
	if d := jm2.Snapshot().Diff(want); d != "" {
		t.Fatal(d)
	}
}
