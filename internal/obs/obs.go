// Package obs is the market daemon's telemetry subsystem: a
// dependency-free metrics registry with a Prometheus text-exposition
// writer, and a lightweight in-process span recorder for bid-lifecycle
// tracing. It is stdlib-only by design — the exposition format is plain
// text and the trace store is a ring buffer, so no client library is
// needed.
//
// The two halves are bundled into a Telemetry value that the serving
// layers (httpapi, market, journal) share:
//
//   - Registry holds typed Counter / Gauge / Histogram instruments with
//     atomic hot paths and label-set interning, plus collector families
//     whose samples are computed at scrape time. WritePrometheus owns
//     family ordering and label escaping, so every family's HELP/TYPE
//     header is emitted exactly once and its samples stay contiguous.
//   - Tracer mints request IDs, records sampled per-request traces
//     (named spans with durations) into a fixed-size ring, and serves
//     them to the /debug/traces operator endpoint.
//
// Instrument update paths are safe for concurrent use and never block a
// scrape: counters and gauges are single atomics, histograms are one
// atomic per bucket.
package obs

// Telemetry bundles the metrics registry and the trace recorder that
// one daemon shares across its layers.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewTelemetry builds a Telemetry with default trace capacity and
// sampling (record every request, keep the last 256 traces).
func NewTelemetry() *Telemetry {
	return &Telemetry{
		Registry: NewRegistry(),
		Tracer:   NewTracer(256, 1, 0),
	}
}
