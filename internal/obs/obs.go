// Package obs is the market daemon's telemetry subsystem: a
// dependency-free metrics registry with a Prometheus text-exposition
// writer, and a lightweight in-process span recorder for bid-lifecycle
// tracing. It is stdlib-only by design — the exposition format is plain
// text and the trace store is a ring buffer, so no client library is
// needed.
//
// The two halves are bundled into a Telemetry value that the serving
// layers (httpapi, market, journal) share:
//
//   - Registry holds typed Counter / Gauge / Histogram instruments with
//     atomic hot paths and label-set interning, plus collector families
//     whose samples are computed at scrape time. WritePrometheus owns
//     family ordering and label escaping, so every family's HELP/TYPE
//     header is emitted exactly once and its samples stay contiguous.
//   - Tracer mints request IDs, records sampled per-request traces
//     (named spans with durations) into a fixed-size ring, and serves
//     them to the /debug/traces operator endpoint.
//
// Instrument update paths are safe for concurrent use and never block a
// scrape: counters and gauges are single atomics, histograms are one
// atomic per bucket.
package obs

import (
	"context"
	"sync"
	"time"
)

// Telemetry bundles the metrics registry and the trace recorder that
// one daemon shares across its layers.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer

	// The per-stage latency family is registered lazily so Telemetry
	// literals (every daemon builds one) keep working: the first layer
	// that binds a stage registers the family, later layers reuse it.
	stageOnce sync.Once
	stages    *Vec[*Histogram]
}

// NewTelemetry builds a Telemetry with default trace capacity and
// sampling (record every request, keep the last 256 traces).
func NewTelemetry() *Telemetry {
	return &Telemetry{
		Registry: NewRegistry(),
		Tracer:   NewTracer(256, 1, 0),
	}
}

// StageVec returns the shared shield_stage_seconds{stage} histogram
// family decomposing the request pipeline (the stage catalog is
// documented in DESIGN.md §Observability), registering it on first
// use. Every instrumented layer binds its stages through this one
// family so shieldtop and SLO clauses address stages uniformly.
func (t *Telemetry) StageVec() *Vec[*Histogram] {
	t.stageOnce.Do(func() {
		t.stages = t.Registry.HistogramVec("shield_stage_seconds",
			"Per-stage latency of the request pipeline (stage catalog in DESIGN.md).",
			LatencyBuckets(), "stage")
	})
	return t.stages
}

// Stage pre-binds one stage series of StageVec — call at instrument
// time, keep the pointer on the hot path.
func (t *Telemetry) Stage(name string) *Histogram {
	return t.StageVec().With(name)
}

// StageEnd closes a stage opened by StageTimer (or a bare span opened
// by StartSpan). It is a plain value — no closure, no heap allocation —
// because stages open several times per request on the hot path. The
// zero value is a no-op.
type StageEnd struct {
	tr    *Trace
	h     *Histogram
	name  string
	start time.Time
}

// End closes the stage: it records the span on the trace (when the
// request is sampled) and observes the elapsed seconds on the
// histogram (when one was bound), stamped with the request ID as the
// owning bucket's exemplar.
func (e StageEnd) End() {
	if e.tr == nil && e.h == nil {
		return
	}
	d := time.Since(e.start)
	e.tr.AddSpan(e.name, e.start, d)
	if e.h != nil {
		id := ""
		if e.tr != nil {
			id = e.tr.ID
		}
		e.h.ObserveTrace(d.Seconds(), id)
	}
}

// StageTimer times one pipeline stage against both telemetry halves:
// it opens a span named name on the context's trace (no-op when the
// request is unsampled) and, when h is non-nil, observes the elapsed
// seconds on h at close — stamped with the request ID as the owning
// bucket's exemplar when the request is sampled. The returned StageEnd
// closes the stage. With h nil and no trace on ctx it is free.
func StageTimer(ctx context.Context, h *Histogram, name string) StageEnd {
	tr := TraceFrom(ctx)
	if h == nil && tr == nil {
		return StageEnd{}
	}
	return StageEnd{tr: tr, h: h, name: name, start: time.Now()}
}
