package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics registers process self-metrics on r: live
// goroutines, heap size and object count, and cumulative GC pause time
// and cycle count. They are collector families read at scrape time;
// runtime.ReadMemStats stops the world briefly, so one read is cached
// and shared across the memory families of a single scrape (and any
// scrape bursts within the cache window).
func RegisterRuntimeMetrics(r *Registry) {
	var mu sync.Mutex
	var ms runtime.MemStats
	var last time.Time
	memstats := func() *runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if last.IsZero() || time.Since(last) > 250*time.Millisecond {
			runtime.ReadMemStats(&ms)
			last = time.Now()
		}
		return &ms
	}

	r.Collect("shield_runtime_goroutines", "Live goroutines.",
		KindGauge, func(emit func(float64, ...string)) {
			emit(float64(runtime.NumGoroutine()))
		})
	r.Collect("shield_runtime_heap_bytes", "Bytes of allocated heap objects (MemStats.HeapAlloc).",
		KindGauge, func(emit func(float64, ...string)) {
			emit(float64(memstats().HeapAlloc))
		})
	r.Collect("shield_runtime_heap_objects", "Live heap objects (MemStats.HeapObjects).",
		KindGauge, func(emit func(float64, ...string)) {
			emit(float64(memstats().HeapObjects))
		})
	r.Collect("shield_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		KindCounter, func(emit func(float64, ...string)) {
			emit(float64(memstats().PauseTotalNs) / 1e9)
		})
	r.Collect("shield_runtime_gc_cycles_total", "Completed GC cycles.",
		KindCounter, func(emit func(float64, ...string)) {
			emit(float64(memstats().NumGC))
		})
}
