package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// namePattern is the repo's metric naming convention: every family is
// shield_-prefixed, lowercase, with underscores. The linter applies it
// to family names; _bucket/_sum/_count suffixes are stripped first.
var namePattern = regexp.MustCompile(`^shield_[a-z0-9_]+$`)

// LintExposition validates a text exposition against the exposition
// format plus this repo's conventions and returns the list of problems
// found (nil when clean):
//
//   - every family name matches shield_[a-z0-9_]+
//   - HELP and TYPE appear exactly once per family, HELP first, before
//     any of its samples
//   - a family's samples are contiguous (one block per family)
//   - no duplicate series (same name and label set twice)
//   - sample values parse; label syntax balances its quotes and escapes
//   - histogram series carry _sum, _count and a +Inf bucket equal to
//     _count, with cumulative bucket counts monotone in le
//   - exemplars appear only on _bucket lines, parse as
//     "# {trace_id=\"...\"} value timestamp", and the exemplar's value
//     fits inside its bucket (value <= le)
//
// It understands exactly the dialect WritePrometheus emits — the
// Prometheus text format plus OpenMetrics-style bucket exemplars.
func LintExposition(text string) []string {
	l := &linter{
		help:  map[string]bool{},
		typ:   map[string]string{},
		done:  map[string]bool{},
		serie: map[string]bool{},
	}
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		l.line(lineNo, line)
	}
	l.closeFamily()
	return l.problems
}

type linter struct {
	problems []string

	cur   string // family currently emitting samples ("" before any)
	help  map[string]bool
	typ   map[string]string // family -> kind keyword
	done  map[string]bool   // families whose sample block has closed
	serie map[string]bool   // name+labels seen

	// histogram accumulation for the current family
	hist map[string]*histSeries // base label-set -> state
}

type histSeries struct {
	les        []float64
	counts     []float64
	sum, count float64
	hasSum     bool
	hasCount   bool
}

func (l *linter) errf(lineNo int, format string, args ...any) {
	l.problems = append(l.problems, fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, line string) {
	if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
		kind := line[2:6]
		rest := line[7:]
		name, _, _ := strings.Cut(rest, " ")
		if name == "" {
			l.errf(n, "%s line without a family name", kind)
			return
		}
		l.meta(n, kind, name, line)
		return
	}
	if strings.HasPrefix(line, "#") {
		l.errf(n, "unexpected comment line %q", line)
		return
	}
	l.sample(n, line)
}

// meta handles a HELP or TYPE line: it opens a (new) family block.
func (l *linter) meta(n int, kind, name, line string) {
	if name != l.cur {
		l.closeFamily()
		if l.done[name] {
			l.errf(n, "family %s reopened: HELP/TYPE must appear once, samples contiguous", name)
		}
		l.cur = name
		if !namePattern.MatchString(name) {
			l.errf(n, "family %s violates naming convention %s", name, namePattern)
		}
	}
	switch kind {
	case "HELP":
		if l.help[name] {
			l.errf(n, "duplicate HELP for %s", name)
		}
		l.help[name] = true
		if l.typ[name] != "" {
			l.errf(n, "HELP for %s after its TYPE", name)
		}
	case "TYPE":
		if l.typ[name] != "" {
			l.errf(n, "duplicate TYPE for %s", name)
		}
		fields := strings.Fields(line)
		k := fields[len(fields)-1]
		switch k {
		case "counter", "gauge", "histogram", "untyped":
		default:
			l.errf(n, "family %s has unknown TYPE %q", name, k)
		}
		l.typ[name] = k
		if !l.help[name] {
			l.errf(n, "TYPE for %s without a preceding HELP", name)
		}
		if k == "histogram" {
			l.hist = map[string]*histSeries{}
		}
	}
}

func (l *linter) sample(n int, line string) {
	name, labels, value, ex, err := parseSample(line)
	if err != nil {
		l.errf(n, "unparseable sample: %v", err)
		return
	}
	base := name
	suffix := ""
	if l.typ[l.cur] == "histogram" {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) && strings.TrimSuffix(name, s) == l.cur {
				base, suffix = l.cur, s
				break
			}
		}
	}
	if base != l.cur {
		l.errf(n, "sample %s outside its family's HELP/TYPE block", name)
		return
	}
	if key := name + "{" + canonicalLabels(labels) + "}"; l.serie[key] {
		l.errf(n, "duplicate series %s", key)
	} else {
		l.serie[key] = true
	}
	if ex != nil && suffix != "_bucket" {
		l.errf(n, "exemplar on non-bucket sample %s", name)
	}

	if l.typ[l.cur] != "histogram" {
		return
	}

	// Histogram bookkeeping: group by the label set minus le.
	var le string
	kept := labels[:0:0]
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		kept = append(kept, kv)
	}
	key := canonicalLabels(kept)
	hs := l.hist[key]
	if hs == nil {
		hs = &histSeries{}
		l.hist[key] = hs
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			l.errf(n, "bucket sample without le label")
			return
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			var perr error
			bound, perr = strconv.ParseFloat(le, 64)
			if perr != nil {
				l.errf(n, "bucket le %q does not parse", le)
				return
			}
		}
		if k := len(hs.les); k > 0 && bound <= hs.les[k-1] {
			l.errf(n, "bucket le %q out of ascending order", le)
		}
		if k := len(hs.counts); k > 0 && value < hs.counts[k-1] {
			l.errf(n, "cumulative bucket count decreases at le %q (%g < %g)", le, value, hs.counts[k-1])
		}
		hs.les = append(hs.les, bound)
		hs.counts = append(hs.counts, value)
		if ex != nil && ex.value > bound {
			l.errf(n, "exemplar value %g exceeds its bucket bound le=%q", ex.value, le)
		}
	case "_sum":
		hs.sum, hs.hasSum = value, true
	case "_count":
		hs.count, hs.hasCount = value, true
	default:
		l.errf(n, "bare sample %s in histogram family", name)
	}
}

// closeFamily runs the end-of-block histogram checks and marks the
// family's sample block closed.
func (l *linter) closeFamily() {
	if l.cur == "" {
		return
	}
	if l.typ[l.cur] == "histogram" {
		for key, hs := range l.hist {
			at := l.cur
			if key != "" {
				at += "{" + key + "}"
			}
			if !hs.hasSum || !hs.hasCount {
				l.problems = append(l.problems, fmt.Sprintf("%s: histogram series missing _sum or _count", at))
			}
			k := len(hs.les)
			if k == 0 || !math.IsInf(hs.les[k-1], 1) {
				l.problems = append(l.problems, fmt.Sprintf("%s: histogram series missing +Inf bucket", at))
			} else if hs.hasCount && hs.counts[k-1] != hs.count {
				l.problems = append(l.problems, fmt.Sprintf("%s: +Inf bucket %g != _count %g", at, hs.counts[k-1], hs.count))
			}
		}
	}
	l.done[l.cur] = true
	l.cur = ""
	l.hist = nil
}

type exemplarParsed struct {
	traceID string
	value   float64
	ts      float64
}

// parseSample parses one sample line of the emitted dialect:
//
//	name[{labels}] value [# {trace_id="..."} value timestamp]
func parseSample(line string) (name string, labels [][2]string, value float64, ex *exemplarParsed, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", nil, 0, nil, fmt.Errorf("no name/value separator in %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, nil, err
		}
		if !strings.HasPrefix(rest, " ") {
			return "", nil, 0, nil, fmt.Errorf("missing space after label set")
		}
	}
	rest = rest[1:]
	valStr, tail, _ := strings.Cut(rest, " ")
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, nil, fmt.Errorf("value %q does not parse", valStr)
	}
	if tail == "" {
		return name, labels, value, nil, nil
	}
	ex, err = parseExemplar(tail)
	return name, labels, value, ex, err
}

// parseExemplar parses the "# {trace_id=\"...\"} value timestamp" tail.
func parseExemplar(tail string) (*exemplarParsed, error) {
	rest, ok := strings.CutPrefix(tail, "# ")
	if !ok || len(rest) == 0 || rest[0] != '{' {
		return nil, fmt.Errorf("trailing content %q is not an exemplar", tail)
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	if len(labels) != 1 || labels[0][0] != "trace_id" {
		return nil, fmt.Errorf("exemplar must carry exactly trace_id, got %v", labels)
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return nil, fmt.Errorf("exemplar needs value and timestamp, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("exemplar value %q does not parse", fields[0])
	}
	ts, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return nil, fmt.Errorf("exemplar timestamp %q does not parse", fields[1])
	}
	return &exemplarParsed{traceID: labels[0][1], value: v, ts: ts}, nil
}

// parseLabels parses a {k="v",...} block (s starts at '{') with the
// exposition format's three escapes, returning the pairs and the
// remainder after the closing brace.
func parseLabels(s string) ([][2]string, string, error) {
	var out [][2]string
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return out, s[i+1:], nil
		}
		if len(out) > 0 {
			if s[i] != ',' {
				return nil, "", fmt.Errorf("missing comma between labels")
			}
			i++
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("unknown escape \\%c in label %s", s[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, [2]string{name, val.String()})
	}
}

// canonicalLabels renders label pairs sorted by name, for duplicate
// detection independent of emission order.
func canonicalLabels(labels [][2]string) string {
	pairs := make([]string, len(labels))
	for i, kv := range labels {
		pairs[i] = kv[0] + "=" + strconv.Quote(kv[1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}
