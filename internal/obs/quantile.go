package obs

import (
	"math"
	"sort"
	"strings"
)

// Quantile estimates the p-quantile (p in [0, 1]) of the observed
// distribution with the same semantics Prometheus's histogram_quantile
// uses: the owning bucket is found from the cumulative counts and the
// value is linearly interpolated between the bucket's bounds, treating
// observations as uniformly distributed inside it. The first bucket
// interpolates from zero. A quantile that lands in the +Inf overflow
// bucket clamps to the highest finite upper bound — the histogram
// cannot resolve beyond its ladder. An empty histogram, a NaN p, or a
// p outside [0, 1] returns NaN.
//
// Reading races benignly with concurrent Observe calls: the snapshot is
// monotone per bucket, so a mid-scrape quantile is bracketed by the
// before and after distributions.
func (h *Histogram) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	cum, count, _ := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	rank := p * float64(count)
	// First non-empty bucket whose cumulative count reaches the rank
	// (the non-empty condition makes p=0 land in the first bucket with
	// mass and interpolate to its lower bound).
	i := sort.Search(len(cum), func(i int) bool { return cum[i] > 0 && float64(cum[i]) >= rank })
	if i >= len(h.upper) {
		// Overflow (+Inf) bucket: the ladder cannot resolve the value.
		return h.upper[len(h.upper)-1]
	}
	lower, prev := 0.0, uint64(0)
	if i > 0 {
		lower = h.upper[i-1]
		prev = cum[i-1]
	}
	inBucket := cum[i] - prev
	if inBucket == 0 {
		return h.upper[i]
	}
	return lower + (h.upper[i]-lower)*(rank-float64(prev))/float64(inBucket)
}

// FindHistogram returns the histogram series registered under the
// family name with exactly the given label values, or false when the
// family does not exist, is not an instrument histogram family, or the
// series has never been touched. It never creates the series — reading
// a quantile must not invent an empty latency series.
func (r *Registry) FindHistogram(name string, labelValues ...string) (*Histogram, bool) {
	r.mu.Lock()
	f := r.byName[name]
	r.mu.Unlock()
	if f == nil || f.kind != KindHistogram || f.collect != nil {
		return nil, false
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return nil, false
	}
	h, ok := s.(*Histogram)
	return h, ok
}
