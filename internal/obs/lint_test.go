package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExemplarExposition pins the OpenMetrics-style exemplar suffix:
// the last sampled observation's trace ID rides the owning _bucket
// line and the whole output still lints clean.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("shield_test_seconds", "Test latency.", []float64{0.001, 1})
	h.ObserveTrace(0.0005, "req-00000001")
	h.ObserveTrace(500, "req-00000002") // +Inf overflow bucket
	h.Observe(0.5)                      // unsampled: no exemplar on the middle bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantFirst := `shield_test_seconds_bucket{le="0.001"} 1 # {trace_id="req-00000001"} 0.0005 `
	if !strings.Contains(out, wantFirst) {
		t.Fatalf("missing first-bucket exemplar %q in:\n%s", wantFirst, out)
	}
	wantInf := `shield_test_seconds_bucket{le="+Inf"} 3 # {trace_id="req-00000002"} 500 `
	if !strings.Contains(out, wantInf) {
		t.Fatalf("missing +Inf exemplar %q in:\n%s", wantInf, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="1"`) && strings.Contains(line, "#") {
			t.Fatalf("unsampled bucket grew an exemplar: %s", line)
		}
	}
	if problems := LintExposition(out); len(problems) != 0 {
		t.Fatalf("exemplar output fails lint: %v", problems)
	}
}

func TestLintAcceptsFullRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("shield_ops_total", "Ops.", "op")
	c.With("bid").Add(3)
	c.With("tick").Inc()
	r.Gauge("shield_depth", "Depth.").Set(2)
	h := r.HistogramVec("shield_lat_seconds", "Latency.", LatencyBuckets(), "op", "status")
	h.With("bid", "ok").ObserveTrace(0.004, "req-0000000a")
	h.With("bid", "error").Observe(1.5)
	r.Collect("shield_books_units", "Books.", KindCounter, func(emit func(float64, ...string)) {
		emit(10, "dataset", "d1")
		emit(12, "dataset", "d2")
	})
	RegisterRuntimeMetrics(r)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(b.String()); len(problems) != 0 {
		t.Fatalf("clean registry fails lint: %v", problems)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"naming convention",
			"# HELP bad_name x\n# TYPE bad_name counter\nbad_name 1\n",
			"naming convention",
		},
		{
			"duplicate series",
			"# HELP shield_a x\n# TYPE shield_a counter\nshield_a{op=\"a\"} 1\nshield_a{op=\"a\"} 2\n",
			"duplicate series",
		},
		{
			"non-contiguous family",
			"# HELP shield_a x\n# TYPE shield_a counter\nshield_a 1\n" +
				"# HELP shield_b x\n# TYPE shield_b counter\nshield_b 1\n" +
				"# HELP shield_a x\n# TYPE shield_a counter\n",
			"reopened",
		},
		{
			"decreasing cumulative buckets",
			"# HELP shield_h x\n# TYPE shield_h histogram\n" +
				"shield_h_bucket{le=\"1\"} 5\nshield_h_bucket{le=\"2\"} 3\nshield_h_bucket{le=\"+Inf\"} 5\n" +
				"shield_h_sum 2\nshield_h_count 5\n",
			"decreases",
		},
		{
			"+Inf disagrees with count",
			"# HELP shield_h x\n# TYPE shield_h histogram\n" +
				"shield_h_bucket{le=\"1\"} 5\nshield_h_bucket{le=\"+Inf\"} 5\n" +
				"shield_h_sum 2\nshield_h_count 6\n",
			"+Inf bucket",
		},
		{
			"exemplar outside its bucket",
			"# HELP shield_h x\n# TYPE shield_h histogram\n" +
				"shield_h_bucket{le=\"1\"} 5 # {trace_id=\"req-1\"} 3 1000.000\n" +
				"shield_h_bucket{le=\"+Inf\"} 5\nshield_h_sum 2\nshield_h_count 5\n",
			"exceeds its bucket",
		},
		{
			"exemplar on a counter",
			"# HELP shield_c x\n# TYPE shield_c counter\n" +
				"shield_c 5 # {trace_id=\"req-1\"} 3 1000.000\n",
			"non-bucket",
		},
		{
			"unparseable value",
			"# HELP shield_c x\n# TYPE shield_c counter\nshield_c banana\n",
			"does not parse",
		},
		{
			"sample without metadata",
			"shield_orphan 1\n",
			"HELP/TYPE",
		},
	}
	for _, tc := range cases {
		problems := LintExposition(tc.text)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", tc.name, tc.want, problems)
		}
	}
}

func TestLintExemplarParsesEscapedTraceID(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("shield_test_seconds", "x", []float64{1})
	h.ObserveTrace(0.5, `id-with-"quote"`)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(b.String()); len(problems) != 0 {
		t.Fatalf("escaped exemplar fails lint: %v", problems)
	}
}

func TestExemplarTimestampIsObservationTime(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("shield_test_seconds", "x", []float64{1})
	before := time.Now().Add(-time.Second)
	h.ObserveTrace(0.5, "req-1")
	e := h.BucketExemplar(0)
	if e == nil || e.Time.Before(before) || e.Time.After(time.Now().Add(time.Second)) {
		t.Fatalf("exemplar timestamp implausible: %+v", e)
	}
}
