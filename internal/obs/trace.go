package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records per-request traces into a fixed-size ring buffer. It
// mints request IDs for every request and decides (with seedable
// sampling) which requests get a full span trace; unsampled requests
// still carry their ID through logs and journal records, they just
// don't occupy ring slots.
type Tracer struct {
	seq atomic.Uint64 // request-ID counter

	mu      sync.Mutex
	ring    []*Trace // completed traces, oldest overwritten first
	next    int
	filled  bool
	every   int    // record 1 in every sampled requests; <=0 disables
	rng     uint64 // xorshift64* state for sampling jitter
	dropped uint64 // traces evicted from the ring so far

	slow atomic.Pointer[slowHook] // slow-op threshold + callback
}

// slowHook is the installed slow-op policy: any finished trace at least
// threshold long is handed to fn.
type slowHook struct {
	threshold time.Duration
	fn        func(TraceSnapshot)
}

// NewTracer builds a tracer keeping the last capacity traces and
// sampling one request in every (1 records all, 0 disables tracing).
// seed makes the sampling sequence reproducible.
func NewTracer(capacity, every int, seed uint64) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		ring:  make([]*Trace, capacity),
		every: every,
		rng:   seed | 1, // xorshift state must be non-zero
	}
}

// NewRequestID mints a unique request identifier. Every request gets
// one, sampled or not. The format is fmt.Sprintf("req-%08x", n),
// hand-rolled because this runs once per request on the hot path.
func (t *Tracer) NewRequestID() string {
	n := t.seq.Add(1)
	if n > 0xffffffff {
		return fmt.Sprintf("req-%08x", n)
	}
	const hexdigits = "0123456789abcdef"
	var buf [12]byte
	copy(buf[:4], "req-")
	for i := 11; i >= 4; i-- {
		buf[i] = hexdigits[n&0xf]
		n >>= 4
	}
	return string(buf[:])
}

// sampled draws the seeded sampling decision.
func (t *Tracer) sampled() bool {
	if t.every <= 0 {
		return false
	}
	if t.every == 1 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// xorshift64*: deterministic for a given seed, cheap, good enough
	// for load shedding (this is sampling, not cryptography).
	t.rng ^= t.rng >> 12
	t.rng ^= t.rng << 25
	t.rng ^= t.rng >> 27
	return (t.rng*0x2545F4914F6CDD1D)%uint64(t.every) == 0
}

// Begin starts a trace for the given request ID if this request is
// sampled; it returns nil otherwise. A nil *Trace is safe to use —
// every method no-ops — so callers thread it unconditionally.
func (t *Tracer) Begin(id, name string) *Trace {
	return t.BeginAt(id, name, time.Now())
}

// BeginAt is Begin with an explicit start time, for callers that learn
// about a request after some of its wall time has already elapsed (the
// wire server starts the trace after the frame has been read off the
// socket and backdates it by the read duration).
func (t *Tracer) BeginAt(id, name string, start time.Time) *Trace {
	if !t.sampled() {
		return nil
	}
	return newTrace(id, name, start)
}

// Adopt starts a trace for a request whose sampling decision was made
// by the peer that propagated it (the wire/HTTP trace field's sampled
// bit). It bypasses the local sampler — the originator already spent
// the sampling budget, and dropping its trace here would leave the
// propagated ID dangling — but still respects a fully disabled tracer
// (every <= 0), which is the torture harness's determinism guarantee.
func (t *Tracer) Adopt(id, name string, start time.Time) *Trace {
	if t.every <= 0 { // immutable after NewTracer, same as sampled()
		return nil
	}
	return newTrace(id, name, start)
}

// newTrace allocates a trace with its span slice aimed at the inline
// buffer, so the typical request (a handful of spans) costs exactly one
// allocation.
func newTrace(id, name string, start time.Time) *Trace {
	tr := &Trace{ID: id, Name: name, start: start}
	tr.spans = tr.spanBuf[:0]
	return tr
}

// OnSlow installs the slow-op hook: every trace whose total duration
// reaches threshold is handed to fn (as a snapshot, after it commits to
// the ring). fn runs on the finishing request's goroutine and must not
// block. A zero threshold or nil fn uninstalls the hook. Only sampled
// requests carry traces, so full slow-op coverage needs sampling 1.
func (t *Tracer) OnSlow(threshold time.Duration, fn func(TraceSnapshot)) {
	if threshold <= 0 || fn == nil {
		t.slow.Store(nil)
		return
	}
	t.slow.Store(&slowHook{threshold: threshold, fn: fn})
}

// Finish completes a trace and commits it to the ring. Finishing a nil
// trace is a no-op.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.duration = time.Since(tr.start)
	dur := tr.duration
	tr.mu.Unlock()
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.dropped++
	}
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
	if hook := t.slow.Load(); hook != nil && dur >= hook.threshold {
		hook.fn(tr.Snapshot())
	}
}

// Dropped returns how many completed traces have been evicted from the
// ring so far.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Recent returns up to n completed traces, most recent first.
func (t *Tracer) Recent(n int) []TraceSnapshot {
	t.mu.Lock()
	var traces []*Trace
	// Walk backwards from the most recently written slot.
	count := t.next
	if t.filled {
		count = len(t.ring)
	}
	for i := 0; i < count && len(traces) < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if t.ring[idx] != nil {
			traces = append(traces, t.ring[idx])
		}
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, len(traces))
	for i, tr := range traces {
		out[i] = tr.Snapshot()
	}
	return out
}

// Find returns the completed trace with the given request ID, scanning
// the ring newest-first (so a reused ID resolves to its latest trace).
// It backs the /debug/traces?id= lookup that histogram exemplars link
// to.
func (t *Tracer) Find(id string) (TraceSnapshot, bool) {
	t.mu.Lock()
	var found *Trace
	count := t.next
	if t.filled {
		count = len(t.ring)
	}
	for i := 0; i < count; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if tr := t.ring[idx]; tr != nil && tr.ID == id {
			found = tr
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceSnapshot{}, false
	}
	return found.Snapshot(), true
}

// Trace is one request's span record. Methods are safe for concurrent
// use (batch bids fan one request out across workers) and safe on a nil
// receiver (unsampled requests).
type Trace struct {
	ID   string
	Name string

	start time.Time

	mu       sync.Mutex
	spans    []Span
	duration time.Duration

	// spanBuf backs spans for the common case (the durable-bid path
	// records ~7 stages); append only heap-allocates past 8 spans.
	spanBuf [8]Span
}

// Span is one named, timed section of a trace.
type Span struct {
	Name     string
	Start    time.Duration // offset from trace start
	Duration time.Duration
}

// StartSpan opens a named span and returns the function that closes
// it. On a nil trace both are no-ops.
func (tr *Trace) StartSpan(name string) func() {
	if tr == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		tr.mu.Lock()
		tr.spans = append(tr.spans, Span{
			Name:     name,
			Start:    begin.Sub(tr.start),
			Duration: end.Sub(begin),
		})
		tr.mu.Unlock()
	}
}

// AddSpan records a span that was timed externally — a stage measured
// before the trace existed (the wire server's frame read happens on the
// reader goroutine, before the request is even parsed) or on a
// goroutine that has no context to carry the trace. start is absolute;
// the span's offset is computed against the trace's own start. No-op on
// a nil trace.
func (tr *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, Span{Name: name, Start: start.Sub(tr.start), Duration: d})
	tr.mu.Unlock()
}

// SetName renames the trace (the HTTP middleware starts a trace before
// routing decides the pattern).
func (tr *Trace) SetName(name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Name = name
	tr.mu.Unlock()
}

// TraceSnapshot is the exported, JSON-ready form of a completed trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUS int64          `json:"duration_us"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span of a TraceSnapshot, in microseconds.
type SpanSnapshot struct {
	Name       string `json:"name"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
}

// Snapshot copies the trace's current state.
func (tr *Trace) Snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := TraceSnapshot{
		ID:         tr.ID,
		Name:       tr.Name,
		Start:      tr.start,
		DurationUS: tr.duration.Microseconds(),
		Spans:      make([]SpanSnapshot, len(tr.spans)),
	}
	for i, s := range tr.spans {
		out.Spans[i] = SpanSnapshot{
			Name:       s.Name,
			StartUS:    s.Start.Microseconds(),
			DurationUS: s.Duration.Microseconds(),
		}
	}
	return out
}

// StageSummary renders the snapshot's spans as one "name=duration"
// per stage, space-separated in span order — the payload of the
// structured slow-op log line.
func (ts TraceSnapshot) StageSummary() string {
	var b strings.Builder
	for i, s := range ts.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString((time.Duration(s.DurationUS) * time.Microsecond).String())
	}
	return b.String()
}

// ---- context propagation ----

type ctxKey int

// traceKey holds the request's identity as ONE context link: a *Trace
// when the request is sampled (a trace carries its own ID), a plain
// string ID otherwise. One link instead of two halves the context
// allocations on the per-request hot path.
const traceKey ctxKey = iota

// WithRequestTrace attaches a request's identity to the context in a
// single link: the trace when the request is sampled (tr non-nil, its
// ID becomes the context's request ID), the bare ID otherwise. This is
// the transport servers' per-request entry point.
func WithRequestTrace(ctx context.Context, id string, tr *Trace) context.Context {
	if tr != nil {
		return context.WithValue(ctx, traceKey, tr)
	}
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey, id)
}

// WithTrace attaches a trace (possibly nil) to the context. The
// trace's own ID becomes the context's request ID, superseding any
// WithRequestID link below it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// StartSpan opens a named span on the context's trace; a no-op when
// the context carries no trace, so instrumented code needs no sampling
// checks. Close it with .End().
func StartSpan(ctx context.Context, name string) StageEnd {
	return StageTimer(ctx, nil, name)
}

// WithRequestID attaches a request ID to the context (for requests
// that carry no sampled trace; a later WithTrace supersedes it).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	switch v := ctx.Value(traceKey).(type) {
	case *Trace:
		return v.ID
	case string:
		return v
	}
	return ""
}

// ExemplarID returns the context's request ID when the request is
// sampled (a trace rides the context) and "" otherwise — the rule for
// stamping histogram exemplars: only IDs that resolve in /debug/traces
// are worth linking from /metrics.
func ExemplarID(ctx context.Context) string {
	if tr := TraceFrom(ctx); tr != nil {
		return tr.ID
	}
	return ""
}
