package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records per-request traces into a fixed-size ring buffer. It
// mints request IDs for every request and decides (with seedable
// sampling) which requests get a full span trace; unsampled requests
// still carry their ID through logs and journal records, they just
// don't occupy ring slots.
type Tracer struct {
	seq atomic.Uint64 // request-ID counter

	mu      sync.Mutex
	ring    []*Trace // completed traces, oldest overwritten first
	next    int
	filled  bool
	every   int    // record 1 in every sampled requests; <=0 disables
	rng     uint64 // xorshift64* state for sampling jitter
	dropped uint64 // traces evicted from the ring so far
}

// NewTracer builds a tracer keeping the last capacity traces and
// sampling one request in every (1 records all, 0 disables tracing).
// seed makes the sampling sequence reproducible.
func NewTracer(capacity, every int, seed uint64) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		ring:  make([]*Trace, capacity),
		every: every,
		rng:   seed | 1, // xorshift state must be non-zero
	}
}

// NewRequestID mints a unique request identifier. Every request gets
// one, sampled or not.
func (t *Tracer) NewRequestID() string {
	return fmt.Sprintf("req-%08x", t.seq.Add(1))
}

// sampled draws the seeded sampling decision.
func (t *Tracer) sampled() bool {
	if t.every <= 0 {
		return false
	}
	if t.every == 1 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// xorshift64*: deterministic for a given seed, cheap, good enough
	// for load shedding (this is sampling, not cryptography).
	t.rng ^= t.rng >> 12
	t.rng ^= t.rng << 25
	t.rng ^= t.rng >> 27
	return (t.rng*0x2545F4914F6CDD1D)%uint64(t.every) == 0
}

// Begin starts a trace for the given request ID if this request is
// sampled; it returns nil otherwise. A nil *Trace is safe to use —
// every method no-ops — so callers thread it unconditionally.
func (t *Tracer) Begin(id, name string) *Trace {
	if !t.sampled() {
		return nil
	}
	return &Trace{ID: id, Name: name, start: time.Now()}
}

// Finish completes a trace and commits it to the ring. Finishing a nil
// trace is a no-op.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.duration = time.Since(tr.start)
	tr.mu.Unlock()
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.dropped++
	}
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Dropped returns how many completed traces have been evicted from the
// ring so far.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Recent returns up to n completed traces, most recent first.
func (t *Tracer) Recent(n int) []TraceSnapshot {
	t.mu.Lock()
	var traces []*Trace
	// Walk backwards from the most recently written slot.
	count := t.next
	if t.filled {
		count = len(t.ring)
	}
	for i := 0; i < count && len(traces) < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if t.ring[idx] != nil {
			traces = append(traces, t.ring[idx])
		}
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, len(traces))
	for i, tr := range traces {
		out[i] = tr.Snapshot()
	}
	return out
}

// Trace is one request's span record. Methods are safe for concurrent
// use (batch bids fan one request out across workers) and safe on a nil
// receiver (unsampled requests).
type Trace struct {
	ID   string
	Name string

	start time.Time

	mu       sync.Mutex
	spans    []Span
	duration time.Duration
}

// Span is one named, timed section of a trace.
type Span struct {
	Name     string
	Start    time.Duration // offset from trace start
	Duration time.Duration
}

// StartSpan opens a named span and returns the function that closes
// it. On a nil trace both are no-ops.
func (tr *Trace) StartSpan(name string) func() {
	if tr == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		tr.mu.Lock()
		tr.spans = append(tr.spans, Span{
			Name:     name,
			Start:    begin.Sub(tr.start),
			Duration: end.Sub(begin),
		})
		tr.mu.Unlock()
	}
}

// SetName renames the trace (the HTTP middleware starts a trace before
// routing decides the pattern).
func (tr *Trace) SetName(name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Name = name
	tr.mu.Unlock()
}

// TraceSnapshot is the exported, JSON-ready form of a completed trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUS int64          `json:"duration_us"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span of a TraceSnapshot, in microseconds.
type SpanSnapshot struct {
	Name       string `json:"name"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
}

// Snapshot copies the trace's current state.
func (tr *Trace) Snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := TraceSnapshot{
		ID:         tr.ID,
		Name:       tr.Name,
		Start:      tr.start,
		DurationUS: tr.duration.Microseconds(),
		Spans:      make([]SpanSnapshot, len(tr.spans)),
	}
	for i, s := range tr.spans {
		out.Spans[i] = SpanSnapshot{
			Name:       s.Name,
			StartUS:    s.Start.Microseconds(),
			DurationUS: s.Duration.Microseconds(),
		}
	}
	return out
}

// ---- context propagation ----

type ctxKey int

const (
	traceKey ctxKey = iota
	requestIDKey
)

// WithTrace attaches a trace (possibly nil) to the context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// StartSpan opens a named span on the context's trace and returns its
// close function; a no-op when the context carries no trace, so
// instrumented code needs no sampling checks.
func StartSpan(ctx context.Context, name string) func() {
	return TraceFrom(ctx).StartSpan(name)
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
