package obs

import (
	"math"
	"testing"
)

// quantileHist builds a bare histogram over the given ladder.
func quantileHist(upper ...float64) *Histogram {
	return newHistogram(upper)
}

func TestQuantileKnownDistribution(t *testing.T) {
	h := quantileHist(1, 2, 4)
	// 50 observations at exactly 1.0 (a bucket edge: le="1" owns it,
	// mirroring Observe's SearchFloat64s) and 50 at 2.0.
	for i := 0; i < 50; i++ {
		h.Observe(1.0)
		h.Observe(2.0)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.25, 0.5}, // rank 25 inside [0,1]: 25/50 of the way up
		{0.5, 1.0},  // rank 50 lands exactly on the first bucket edge
		{0.75, 1.5}, // rank 75: halfway through (1,2]
		{1.0, 2.0},  // rank 100 exhausts the second bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	h := quantileHist(10, 20)
	for i := 0; i < 100; i++ {
		h.Observe(3) // all mass in (0, 10]
	}
	if got := h.Quantile(0.5); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 5 (uniform within the first bucket)", got)
	}
}

func TestQuantileOverflowClampsToHighestFiniteBound(t *testing.T) {
	h := quantileHist(1, 2, 4)
	h.Observe(100) // +Inf bucket
	h.Observe(100)
	for _, p := range []float64{0.0, 0.5, 1.0} {
		if got := h.Quantile(p); got != 4 {
			t.Errorf("Quantile(%v) = %v, want the highest finite bound 4", p, got)
		}
	}
	// Mixed: 9 fast observations, 1 in overflow. p99 cannot resolve
	// beyond the ladder, p50 still interpolates normally.
	h2 := quantileHist(1, 2, 4)
	for i := 0; i < 9; i++ {
		h2.Observe(0.5)
	}
	h2.Observe(1e9)
	if got := h2.Quantile(0.99); got != 4 {
		t.Errorf("overflow p99 = %v, want 4", got)
	}
	if got := h2.Quantile(0.5); got <= 0 || got > 1 {
		t.Errorf("p50 = %v, want inside the first bucket", got)
	}
}

func TestQuantileEmptyAndBadInputs(t *testing.T) {
	h := quantileHist(1, 2)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(1)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(p); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", p, got)
		}
	}
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("test_latency_seconds", "h", []float64{1, 2}, "op", "status")
	vec.With("bid", "ok").Observe(1.5)

	if h, ok := r.FindHistogram("test_latency_seconds", "bid", "ok"); !ok {
		t.Fatal("registered series not found")
	} else if h.Count() != 1 {
		t.Fatalf("found series has count %d, want 1", h.Count())
	}
	// Never invent a series: an untouched label set stays absent.
	if _, ok := r.FindHistogram("test_latency_seconds", "bid", "error"); ok {
		t.Error("FindHistogram created or found an untouched series")
	}
	if _, ok := r.FindHistogram("no_such_family", "bid", "ok"); ok {
		t.Error("FindHistogram found a family that was never registered")
	}
	// Non-histogram families are not findable as histograms.
	r.Counter("test_total", "c")
	if _, ok := r.FindHistogram("test_total"); ok {
		t.Error("FindHistogram matched a counter family")
	}
}
