package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentHammer drives Begin/Finish/Recent/Find/Dropped
// from many goroutines at once; under -race it proves the ring, the
// sampler and the slow-op hook share no unsynchronized state.
func TestTracerConcurrentHammer(t *testing.T) {
	tr := NewTracer(32, 2, 7)
	var slow sync.Map
	tr.OnSlow(time.Nanosecond, func(ts TraceSnapshot) { slow.Store(ts.ID, true) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.NewRequestID()
				trace := tr.Begin(id, "hammer")
				trace.StartSpan("stage")()
				trace.AddSpan("external", time.Now(), time.Microsecond)
				tr.Finish(trace)
				if i%17 == 0 {
					tr.Recent(16)
					tr.Find(id)
					tr.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Recent(32); len(got) != 32 {
		t.Fatalf("ring should be full: got %d traces", len(got))
	}
}

// TestSeededSamplingIsReproducible runs the same request sequence
// through two tracers built with identical seeds and sampling rates and
// requires the exact same requests to be picked both times.
func TestSeededSamplingIsReproducible(t *testing.T) {
	pick := func(seed uint64) []int {
		tr := NewTracer(64, 3, seed)
		var out []int
		for i := 0; i < 200; i++ {
			if tr.Begin(tr.NewRequestID(), "req") != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := pick(42), pick(42)
	if len(a) == 0 {
		t.Fatal("sampling 1-in-3 picked nothing in 200 requests")
	}
	if len(a) != len(b) {
		t.Fatalf("two identical runs sampled %d vs %d requests", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at pick %d: request %d vs %d", i, a[i], b[i])
		}
	}
	// (An odd seed: NewTracer ORs the seed with 1, so 42 and 43 collide
	// by construction.)
	if c := pick(101); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical sampling sequence")
		}
	}
}

func TestAdoptBypassesSamplerButHonorsDisabled(t *testing.T) {
	// every=1000: the local sampler would almost surely say no, but an
	// adopted (remotely sampled) trace must record anyway.
	tr := NewTracer(8, 1000, 1)
	a := tr.Adopt("req-remote", "wire.bid", time.Now())
	if a == nil {
		t.Fatal("Adopt returned nil on an enabled tracer")
	}
	tr.Finish(a)
	if _, ok := tr.Find("req-remote"); !ok {
		t.Fatal("adopted trace not in ring")
	}
	// every=0 disables tracing entirely; Adopt must respect that (the
	// torture twins depend on a disabled tracer staying inert).
	off := NewTracer(8, 0, 1)
	if off.Adopt("req-x", "wire.bid", time.Now()) != nil {
		t.Fatal("Adopt recorded on a disabled tracer")
	}
}

func TestBeginAtBackdatesAndAddSpanOffsets(t *testing.T) {
	tr := NewTracer(8, 1, 1)
	readDur := 5 * time.Millisecond
	start := time.Now().Add(-readDur)
	trace := tr.BeginAt("req-1", "wire.bid", start)
	trace.AddSpan("wire.read", start, readDur)
	tr.Finish(trace)
	snap, ok := tr.Find("req-1")
	if !ok {
		t.Fatal("trace not found")
	}
	if snap.DurationUS < readDur.Microseconds() {
		t.Fatalf("backdated trace duration %dus shorter than the read it covers (%v)", snap.DurationUS, readDur)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "wire.read" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if snap.Spans[0].StartUS != 0 {
		t.Fatalf("wire.read should start at offset 0, got %dus", snap.Spans[0].StartUS)
	}
	if snap.Spans[0].DurationUS != readDur.Microseconds() {
		t.Fatalf("wire.read duration %dus, want %dus", snap.Spans[0].DurationUS, readDur.Microseconds())
	}
}

func TestOnSlowFiresWithStageBreakdown(t *testing.T) {
	tr := NewTracer(8, 1, 1)
	var got []TraceSnapshot
	tr.OnSlow(10*time.Millisecond, func(ts TraceSnapshot) { got = append(got, ts) })

	fast := tr.Begin("req-fast", "bid")
	tr.Finish(fast)

	slow := tr.BeginAt("req-slow", "bid", time.Now().Add(-20*time.Millisecond))
	slow.AddSpan("group_commit.fsync", time.Now().Add(-15*time.Millisecond), 15*time.Millisecond)
	tr.Finish(slow)

	if len(got) != 1 || got[0].ID != "req-slow" {
		t.Fatalf("slow hook fired for %+v, want exactly req-slow", got)
	}
	sum := got[0].StageSummary()
	if !strings.Contains(sum, "group_commit.fsync=15ms") {
		t.Fatalf("StageSummary %q missing stage breakdown", sum)
	}

	tr.OnSlow(0, nil) // uninstall
	again := tr.BeginAt("req-slow-2", "bid", time.Now().Add(-20*time.Millisecond))
	tr.Finish(again)
	if len(got) != 1 {
		t.Fatal("slow hook fired after uninstall")
	}
}

func TestStageTimerObservesHistogramAndSpan(t *testing.T) {
	tel := NewTelemetry()
	h := tel.Stage("decode")
	tr := tel.Tracer.Begin("req-1", "wire.bid")
	ctx := WithTrace(WithRequestID(context.Background(), "req-1"), tr)

	StageTimer(ctx, h, "decode").End()
	tel.Tracer.Finish(tr)

	if h.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count())
	}
	// The observation must carry the request ID as its bucket exemplar.
	found := false
	for i := 0; ; i++ {
		e := h.BucketExemplar(i)
		if i > 64 {
			break
		}
		if e != nil && e.TraceID == "req-1" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no bucket exemplar carries the sampled request id")
	}
	snap, ok := tel.Tracer.Find("req-1")
	if !ok || len(snap.Spans) != 1 || snap.Spans[0].Name != "decode" {
		t.Fatalf("trace spans = %+v, want one decode span", snap.Spans)
	}

	// Unsampled: histogram observed, no exemplar stamped.
	h2 := tel.Stage("apply")
	StageTimer(context.Background(), h2, "apply").End()
	if h2.Count() != 1 {
		t.Fatalf("unsampled stage observation lost: count = %d", h2.Count())
	}
	for i := 0; i <= 64; i++ {
		if h2.BucketExemplar(i) != nil {
			t.Fatal("unsampled observation stamped an exemplar")
		}
	}
}

func TestStageVecRegistersOnceAcrossLayers(t *testing.T) {
	tel := &Telemetry{Registry: NewRegistry(), Tracer: NewTracer(8, 0, 0)}
	// Several layers bind stages; only one family registration may
	// happen (a second would panic).
	a := tel.Stage("wire.read")
	b := tel.Stage("wire.read")
	if a != b {
		t.Fatal("same stage bound twice returned different series")
	}
	tel.Stage("group_commit.fsync")
	var buf strings.Builder
	if err := tel.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `shield_stage_seconds_bucket{stage="wire.read"`) {
		t.Fatalf("exposition missing stage family:\n%s", buf.String())
	}
}
