package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type as announced by its TYPE line.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition-format TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// CollectFunc produces a family's samples at scrape time. It is called
// under the registry's scrape path; emit appends one sample with the
// given value and label pairs (name1, value1, name2, value2, ...).
// Label pairs must come in a fixed order so series ordering is stable
// across scrapes.
type CollectFunc func(emit func(value float64, labelPairs ...string))

// family is one metric family: a name, HELP text, kind, and either a
// set of interned instrument series or a scrape-time collector.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram upper bounds (without +Inf)

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram, keyed by encoded label values
	order  []string       // insertion order of series keys
	labels []string       // label names for instrument families

	collect CollectFunc // non-nil for collector families
}

// Registry holds metric families in registration order and writes them
// in the Prometheus text exposition format. Registering the same family
// name twice panics: family names are global within a registry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family

	// onCollectError, when set, is invoked with the family name each
	// time a collector panics mid-scrape. The scrape itself continues
	// with the remaining families, so one bad collector cannot take
	// down the whole /metrics endpoint.
	onCollectError atomic.Value // func(family string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnCollectError installs a hook called with the family name whenever a
// collector panics during a scrape (the scrape continues). Typically
// wired to a scrape-errors counter.
func (r *Registry) OnCollectError(fn func(family string)) {
	r.onCollectError.Store(fn)
}

func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric family %q registered twice", f.name))
	}
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
	return f
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *Vec[*Counter] {
	f := r.register(&family{name: name, help: help, kind: KindCounter,
		series: make(map[string]any), labels: labelNames})
	return &Vec[*Counter]{fam: f, make: func() *Counter { return &Counter{} }}
}

// Counter registers a label-less counter and returns its single series.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *Vec[*Gauge] {
	f := r.register(&family{name: name, help: help, kind: KindGauge,
		series: make(map[string]any), labels: labelNames})
	return &Vec[*Gauge]{fam: f, make: func() *Gauge { return &Gauge{} }}
}

// Gauge registers a label-less gauge and returns its single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec registers a histogram family with the given bucket upper
// bounds (ascending; +Inf is implicit) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *Vec[*Histogram] {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	b := make([]float64, len(buckets))
	copy(b, buckets)
	f := r.register(&family{name: name, help: help, kind: KindHistogram,
		series: make(map[string]any), labels: labelNames, buckets: b})
	return &Vec[*Histogram]{fam: f, make: func() *Histogram { return newHistogram(f.buckets) }}
}

// Histogram registers a label-less histogram and returns its single
// series.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// Collect registers a scrape-time family: fn is called on every
// WritePrometheus and emits the family's current samples. Use for
// values that already live elsewhere (market books, shard counters) so
// the scrape reads them in one consistent pass instead of mirroring
// them into instruments.
func (r *Registry) Collect(name, help string, kind Kind, fn CollectFunc) {
	r.register(&family{name: name, help: help, kind: kind, collect: fn})
}

// Vec is a family of series addressed by label values. With interns the
// label set: the first call for a given value tuple allocates the
// series, subsequent calls return the same pointer, so hot paths can
// either pre-bind (call With once, keep the pointer) or pay one map
// lookup per update.
type Vec[T any] struct {
	fam  *family
	make func() T
}

// With returns the series for the given label values (one per label
// name, in order). It panics on arity mismatch.
func (v *Vec[T]) With(labelValues ...string) T {
	f := v.fam
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d labels", f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.(T)
	}
	s := v.make()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter is a monotonically increasing value. Integer increments take
// the single-atomic fast path; fractional amounts fall back to a CAS
// loop. The exposed value is the sum of both.
type Counter struct {
	intCount  atomic.Uint64
	floatBits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.intCount.Add(1) }

// Add adds n (the fast path for integer counts).
func (c *Counter) Add(n uint64) { c.intCount.Add(n) }

// AddFloat adds v, which must be non-negative (counters never go down).
func (c *Counter) AddFloat(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter decrement %v", v))
	}
	addFloatBits(&c.floatBits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	return float64(c.intCount.Load()) + math.Float64frombits(c.floatBits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits atomically adds v to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Each bucket is one
// atomic counter (observations hit exactly one), cumulated only at
// exposition time; the total count is derived from the buckets, so
// _count and the +Inf bucket agree even mid-scrape. Each bucket also
// holds one exemplar slot: the last sampled request that landed there
// (ObserveTrace), exposed OpenMetrics-style so a tail bucket on
// /metrics links straight to its trace in /debug/traces.
type Histogram struct {
	upper     []float64       // shared, immutable
	buckets   []atomic.Uint64 // len(upper)+1, last = overflow (+Inf)
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // parallel to buckets
}

// Exemplar links one concrete observation to the trace that produced
// it: the observed value, the request/trace ID, and when it happened.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:     upper,
		buckets:   make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveTrace(v, "") }

// exemplarEvery gates how often a bucket's exemplar slot is even
// considered for a rewrite: an empty slot fills on the first sampled
// hit, after that only every 16th hit to that bucket re-reads the
// clock. An exemplar only has to stay fresh enough that its trace
// still resolves in /debug/traces (the ring holds hundreds of traces),
// and skipping the rewrite keeps the sampled observation path
// allocation-free — and nearly clock-free — in steady state.
const exemplarEvery = 16

// exemplarRefresh additionally bounds rewrites in time, so a hot
// bucket doesn't churn its exemplar pointer on every 16th hit.
const exemplarRefresh = time.Millisecond

// ObserveTrace records one observation and, when traceID is non-empty,
// pins it as the owning bucket's exemplar (last writer wins, refreshed
// at most once per exemplarEvery hits and exemplarRefresh elapsed).
// Pass the ID only for sampled requests — obs.ExemplarID(ctx) encodes
// that rule — so every exemplar on /metrics resolves in /debug/traces.
func (h *Histogram) ObserveTrace(v float64, traceID string) {
	// Binary search for the first bucket whose upper bound holds v.
	i := sort.SearchFloat64s(h.upper, v)
	n := h.buckets[i].Add(1)
	addFloatBits(&h.sumBits, v)
	if traceID != "" {
		if old := h.exemplars[i].Load(); old == nil ||
			(n%exemplarEvery == 0 && time.Since(old.Time) >= exemplarRefresh) {
			h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency instruments.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveSinceTrace is ObserveSince with an exemplar trace ID (see
// ObserveTrace).
func (h *Histogram) ObserveSinceTrace(start time.Time, traceID string) {
	h.ObserveTrace(time.Since(start).Seconds(), traceID)
}

// BucketExemplar returns bucket i's current exemplar (i indexes the
// ascending upper bounds, len(buckets)-1 being +Inf), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts (aligned with upper, then
// +Inf), the total count, and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, running, h.Sum()
}

// LatencyBuckets is the default latency bucket ladder in seconds:
// 5µs .. ~20s, doubling. Fits both in-memory hot paths (lock waits,
// engine evaluation) and fsync-bound appends.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 23)
	for v := 5e-6; v < 25; v *= 2 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets is a byte-size bucket ladder: 64B .. 16MB, ×4.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 10)
	for v := 64.0; v <= 16*1024*1024; v *= 4 {
		out = append(out, v)
	}
	return out
}

// WritePrometheus writes every family in registration order in the
// Prometheus text exposition format: HELP and TYPE exactly once per
// family, all samples contiguous, label values escaped. A collector
// that panics is skipped (its partial output stands) and reported via
// OnCollectError; the remaining families still scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.collect != nil {
			r.runCollector(&b, f)
		} else {
			f.writeSeries(&b)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// runCollector invokes a collector family, recovering panics so one
// broken collector cannot fail the whole scrape.
func (r *Registry) runCollector(b *strings.Builder, f *family) {
	defer func() {
		if rec := recover(); rec != nil {
			if fn, ok := r.onCollectError.Load().(func(string)); ok && fn != nil {
				fn(f.name)
			}
		}
	}()
	f.collect(func(value float64, labelPairs ...string) {
		if len(labelPairs)%2 != 0 {
			panic(fmt.Sprintf("obs: %s: odd label pairs", f.name))
		}
		b.WriteString(f.name)
		if len(labelPairs) > 0 {
			b.WriteByte('{')
			for i := 0; i < len(labelPairs); i += 2 {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(b, "%s=%q", labelPairs[i], escapeLabel(labelPairs[i+1]))
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(value))
		b.WriteByte('\n')
	})
}

// writeSeries emits an instrument family's series in insertion order.
func (f *family) writeSeries(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\xff")
		}
		switch s := series[i].(type) {
		case *Counter:
			f.sample(b, "", labelString(f.labels, values, "", ""), s.Value())
		case *Gauge:
			f.sample(b, "", labelString(f.labels, values, "", ""), s.Value())
		case *Histogram:
			cum, count, sum := s.snapshot()
			for j, ub := range f.buckets {
				f.sampleEx(b, "_bucket", labelString(f.labels, values, "le", formatValue(ub)), float64(cum[j]), s.exemplars[j].Load())
			}
			f.sampleEx(b, "_bucket", labelString(f.labels, values, "le", "+Inf"), float64(cum[len(cum)-1]), s.exemplars[len(cum)-1].Load())
			f.sample(b, "_sum", labelString(f.labels, values, "", ""), sum)
			f.sample(b, "_count", labelString(f.labels, values, "", ""), float64(count))
		}
	}
}

func (f *family) sample(b *strings.Builder, suffix, labels string, v float64) {
	f.sampleEx(b, suffix, labels, v, nil)
}

// sampleEx writes one sample line, appending an OpenMetrics-style
// exemplar suffix (" # {trace_id=\"...\"} value timestamp") when e is
// non-nil. Plain Prometheus-text consumers that split on the first
// space still parse the series name and value; OpenMetrics-aware ones
// (shieldtop, the metrics linter) get the trace link.
func (f *family) sampleEx(b *strings.Builder, suffix, labels string, v float64, e *Exemplar) {
	b.WriteString(f.name)
	b.WriteString(suffix)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	if e != nil {
		b.WriteString(" # {trace_id=")
		fmt.Fprintf(b, "%q", escapeLabel(e.TraceID))
		b.WriteString("} ")
		b.WriteString(formatValue(e.Value))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(float64(e.Time.UnixMilli())/1000, 'f', 3, 64))
	}
	b.WriteByte('\n')
}

// labelString renders {k="v",...} from parallel name/value slices plus
// an optional extra pair (the histogram le label); empty when there are
// no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel prepares a label value for %q quoting: the exposition
// format escapes backslash, double quote and newline inside quoted
// label values — %q handles all three plus control characters, so the
// only pre-processing needed is nothing; we still route values through
// this function to keep the escaping decision in one place. Since %q
// would also escape non-ASCII, which the format allows raw, do the
// three required escapes by hand and bypass %q.
func escapeLabel(v string) escapedLabel { return escapedLabel(v) }

// escapedLabel formats itself with the exposition format's three label
// escapes when printed with %q (it implements fmt.Formatter so %q does
// not double-escape).
type escapedLabel string

func (e escapedLabel) Format(f fmt.State, verb rune) {
	s := string(e)
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	io.WriteString(f, `"`+s+`"`)
}

// escapeHelp escapes HELP text (backslash and newline only; quotes are
// legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
