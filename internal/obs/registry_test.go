package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionConformance validates WritePrometheus output against
// the rules a Prometheus scraper enforces: HELP and TYPE exactly once
// per family, every sample inside its family's contiguous block, no
// duplicate series, parseable values.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_requests_total", "Requests served.", "route", "status")
	c.With("/v1/bids", "200").Add(3)
	c.With("/v1/bids", "404").Inc()
	c.With("/v1/tick", "200").Inc()
	g := r.Gauge("test_queue_depth", "Current queue depth.")
	g.Set(7)
	h := r.HistogramVec("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "route")
	h.With("/v1/bids").Observe(0.05)
	h.With("/v1/bids").Observe(5)
	r.Collect("test_dataset_bids_total", "Bids per dataset.", KindCounter, func(emit func(float64, ...string)) {
		emit(4, "dataset", "alpha")
		emit(2, "dataset", "beta")
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var (
		current string
		helped  = map[string]bool{}
		typed   = map[string]bool{}
		closed  = map[string]bool{}
		series  = map[string]bool{}
		scanner = bufio.NewScanner(strings.NewReader(out))
	)
	base := func(sample string) string {
		name := strings.FieldsFunc(sample, func(r rune) bool { return r == '{' || r == ' ' })[0]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suffix); fam != name && (helped[fam] || typed[fam]) {
				return fam
			}
		}
		return name
	}
	line := 0
	for scanner.Scan() {
		text := scanner.Text()
		line++
		switch {
		case strings.HasPrefix(text, "# HELP "):
			name := strings.Fields(text)[2]
			if helped[name] {
				t.Errorf("line %d: duplicate HELP for %s", line, name)
			}
			helped[name] = true
			if current != "" && current != name {
				closed[current] = true
			}
			current = name
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text)
			if fields[2] != current {
				t.Errorf("line %d: TYPE %s outside its family block (%s)", line, fields[2], current)
			}
			if typed[fields[2]] {
				t.Errorf("line %d: duplicate TYPE for %s", line, fields[2])
			}
			typed[fields[2]] = true
		case text == "" || strings.HasPrefix(text, "#"):
		default:
			name := base(text)
			if name != current {
				t.Errorf("line %d: sample %q outside contiguous block of %s", line, text, name)
			}
			key := strings.SplitN(text, " ", 2)[0]
			if series[key] {
				t.Errorf("line %d: duplicate series %s", line, key)
			}
			series[key] = true
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(text[len(key):]), "%g", &v); err != nil {
				t.Errorf("line %d: unparseable value in %q", line, text)
			}
		}
	}

	for _, want := range []string{
		`test_requests_total{route="/v1/bids",status="200"} 3`,
		`test_queue_depth 7`,
		`test_dataset_bids_total{dataset="alpha"} 4`,
		`test_latency_seconds_bucket{route="/v1/bids",le="0.1"} 1`,
		`test_latency_seconds_bucket{route="/v1/bids",le="+Inf"} 2`,
		`test_latency_seconds_count{route="/v1/bids"} 2`,
		"# TYPE test_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLabelEscaping pins the three escapes the exposition format
// requires inside quoted label values: backslash, double quote and
// newline.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_escapes_total", "Escaping.", "v")
	c.With(`back\slash`).Inc()
	c.With(`quo"te`).Inc()
	c.With("new\nline").Inc()
	r.Collect("test_collector_escapes_total", "Escaping via collector.", KindCounter,
		func(emit func(float64, ...string)) {
			emit(1, "v", "a\\b\"c\nd")
		})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_escapes_total{v="back\\slash"} 1`,
		`test_escapes_total{v="quo\"te"} 1`,
		`test_escapes_total{v="new\nline"} 1`,
		`test_collector_escapes_total{v="a\\b\"c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != strings.Count(out, "\n") || strings.Contains(out, "line\"}") && !strings.Contains(out, `new\nline`) {
		t.Errorf("raw newline leaked into a label value:\n%s", out)
	}
}

// TestHistogramBucketMath checks bucket assignment (le is inclusive),
// cumulative counts, sum, count, and overflow.
func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 8} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); math.Abs(got-16) > 1e-12 {
		t.Fatalf("sum = %g, want 16", got)
	}
	cum, count, _ := h.snapshot()
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=4: +{3}; +Inf: +{8}.
	want := []uint64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if count != 6 {
		t.Errorf("snapshot count = %d, want 6", count)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		`test_h_bucket{le="1"} 2`,
		`test_h_bucket{le="2"} 4`,
		`test_h_bucket{le="4"} 5`,
		`test_h_bucket{le="+Inf"} 6`,
		`test_h_sum 16`,
		`test_h_count 6`,
	} {
		if !strings.Contains(b.String(), wantLine) {
			t.Errorf("missing %q:\n%s", wantLine, b.String())
		}
	}
}

// TestConcurrentUpdatesDuringScrape hammers every instrument type from
// many goroutines while scraping — run under -race this is the
// registry's data-race proof; the final scrape also checks no updates
// were lost.
func TestConcurrentUpdatesDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c", "c")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_hh", "h", LatencyBuckets())
	vec := r.CounterVec("test_vec", "v", "worker")

	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := vec.With(fmt.Sprint(w))
			for i := 0; i < per; i++ {
				c.Inc()
				c.AddFloat(0.5)
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				mine.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*per*1.5 {
		t.Errorf("counter = %g, want %g", got, float64(workers*per)*1.5)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestCollectorPanicIsContained proves one broken collector cannot take
// down the scrape: the rest of the families still emit and the error
// hook fires.
func TestCollectorPanicIsContained(t *testing.T) {
	r := NewRegistry()
	var failures []string
	r.OnCollectError(func(fam string) { failures = append(failures, fam) })
	r.Collect("test_bad", "panics", KindGauge, func(func(float64, ...string)) {
		panic("scrape race")
	})
	c := r.Counter("test_after", "after the bad one")
	c.Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_after 1") {
		t.Fatalf("families after a panicking collector were lost:\n%s", b.String())
	}
	if len(failures) != 1 || failures[0] != "test_bad" {
		t.Fatalf("error hook calls = %v", failures)
	}
}

// TestDuplicateRegistrationPanics pins the family-name uniqueness rule.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family registration did not panic")
		}
	}()
	r.Gauge("test_dup", "second")
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_c", "c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_h", "h", LatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3e-5)
		}
	})
}
