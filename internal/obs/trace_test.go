package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansThroughContext(t *testing.T) {
	tr := NewTracer(16, 1, 42)
	id := tr.NewRequestID()
	trace := tr.Begin(id, "POST /v1/bids")
	if trace == nil {
		t.Fatal("sample-every-1 tracer skipped a request")
	}
	ctx := WithTrace(WithRequestID(context.Background(), id), trace)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("request id = %q, want %q", got, id)
	}

	end := StartSpan(ctx, "shard.lock_wait")
	time.Sleep(time.Millisecond)
	end.End()
	end = StartSpan(ctx, "price.evaluate")
	end.End()
	tr.Finish(trace)

	recent := tr.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.ID != id || got.Name != "POST /v1/bids" {
		t.Fatalf("trace header = %+v", got)
	}
	if len(got.Spans) != 2 || got.Spans[0].Name != "shard.lock_wait" || got.Spans[1].Name != "price.evaluate" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if got.Spans[0].DurationUS < 900 {
		t.Fatalf("slept span duration = %dus", got.Spans[0].DurationUS)
	}
	if got.DurationUS < got.Spans[0].DurationUS {
		t.Fatalf("trace shorter than its span: %+v", got)
	}
}

// TestSpanOnUnsampledRequestIsFree: a context without a trace produces
// working no-op spans, so instrumented code never branches on sampling.
func TestSpanOnUnsampledRequestIsFree(t *testing.T) {
	tr := NewTracer(4, 0, 1) // sampling disabled
	if trace := tr.Begin(tr.NewRequestID(), "x"); trace != nil {
		t.Fatal("disabled tracer sampled a request")
	}
	end := StartSpan(context.Background(), "anything")
	end.End() // must not panic
	var nilTrace *Trace
	nilTrace.SetName("still fine")
	nilTrace.StartSpan("noop")()
	tr.Finish(nilTrace)
	if got := tr.Recent(10); len(got) != 0 {
		t.Fatalf("recent = %v, want empty", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(3, 1, 7)
	for i := 0; i < 5; i++ {
		trace := tr.Begin(fmt.Sprintf("req-%d", i), "t")
		tr.Finish(trace)
	}
	recent := tr.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Most recent first.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestSamplingDeterministicAndProportional: the same seed yields the
// same decisions, and 1-in-N sampling lands near 1/N.
func TestSamplingDeterministicAndProportional(t *testing.T) {
	decide := func(seed uint64) []bool {
		tr := NewTracer(4, 8, seed)
		out := make([]bool, 4000)
		for i := range out {
			out[i] = tr.Begin("id", "t") != nil
		}
		return out
	}
	a, b := decide(99), decide(99)
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
		if a[i] {
			sampled++
		}
	}
	if sampled < 300 || sampled > 700 {
		t.Fatalf("1-in-8 sampling took %d of 4000", sampled)
	}
	c := decide(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sampling sequences")
	}
}

// TestConcurrentSpans: one trace written from many goroutines (the
// batch-bid fan-out shape) is race-free under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(8, 1, 3)
	trace := tr.Begin(tr.NewRequestID(), "batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				trace.StartSpan(fmt.Sprintf("w%d", w))()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish(trace)
	got := tr.Recent(1)
	if len(got) != 1 || len(got[0].Spans) != 800 {
		t.Fatalf("spans = %d, want 800", len(got[0].Spans))
	}
}
