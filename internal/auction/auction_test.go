package auction

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/datamarket/shield/internal/rng"
)

func TestRevenue(t *testing.T) {
	bids := []float64{10, 20, 30}
	cases := []struct{ p, want float64 }{
		{5, 15},  // all three win
		{10, 30}, // all three win (>=)
		{15, 30}, // two win
		{30, 30}, // one wins
		{31, 0},  // none win
		{0, 0},   // free allocation raises nothing
		{-5, 0},  // negative price raises nothing
	}
	for _, c := range cases {
		if got := Revenue(bids, c.p); got != c.want {
			t.Errorf("Revenue(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOptimalPriceBasic(t *testing.T) {
	// bids 10,20,30: k*b_k over descending = 30, 40, 30 -> price 20, rev 40.
	p, r := OptimalPrice([]float64{10, 20, 30})
	if p != 20 || r != 40 {
		t.Errorf("OptimalPrice = (%v, %v), want (20, 40)", p, r)
	}
}

func TestOptimalPriceTieBreaksHigh(t *testing.T) {
	// bids 4, 2, 2: candidates 1*4=4, 2*2=4 (b=2), 3*2=6? sorted desc:
	// 4,2,2 -> k*b = 4, 4, 6 -> unique max 6 at price 2. Build a real tie:
	// bids 4, 2: 1*4=4, 2*2=4 -> tie; paper says choose larger b_k = 4.
	p, r := OptimalPrice([]float64{4, 2})
	if p != 4 || r != 4 {
		t.Errorf("tie-break: OptimalPrice = (%v, %v), want (4, 4)", p, r)
	}
}

func TestOptimalPriceEdgeCases(t *testing.T) {
	if p, r := OptimalPrice(nil); p != 0 || r != 0 {
		t.Errorf("empty: (%v, %v)", p, r)
	}
	if p, r := OptimalPrice([]float64{0, -3}); p != 0 || r != 0 {
		t.Errorf("non-positive: (%v, %v)", p, r)
	}
	if p, r := OptimalPrice([]float64{7}); p != 7 || r != 7 {
		t.Errorf("singleton: (%v, %v)", p, r)
	}
}

func TestOptimalPriceIsActuallyOptimal(t *testing.T) {
	// Property: for random bid vectors, no bid value extracts more revenue
	// than the optimum (a posting price not equal to any bid is dominated
	// by the next bid up, so checking bid values suffices).
	r := rng.New(7)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(40)
		bids := make([]float64, n)
		for i := range bids {
			bids[i] = r.Uniform(0, 100)
		}
		_, opt := OptimalPrice(bids)
		for _, b := range bids {
			if Revenue(bids, b) > opt+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClaim1PartitionSuperadditivity(t *testing.T) {
	// Claim 1 (Protection-Revenue Tradeoff): partitioning a bid vector
	// never decreases summed optimal revenue: r(b) <= r(b1) + r(b2).
	r := rng.New(11)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 2 + rr.Intn(60)
		bids := make([]float64, n)
		for i := range bids {
			bids[i] = r.Uniform(0.01, 100)
		}
		cut := 1 + rr.Intn(n-1)
		whole := OptimalRevenue(bids)
		left := OptimalRevenue(bids[:cut])
		right := OptimalRevenue(bids[cut:])
		return whole <= left+right+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBestCandidate(t *testing.T) {
	bids := []float64{10, 20, 30}
	p, r := BestCandidate(bids, []float64{5, 18, 25})
	// 5 -> 15, 18 -> 36, 25 -> 25.
	if p != 18 || r != 36 {
		t.Errorf("BestCandidate = (%v, %v), want (18, 36)", p, r)
	}
	if p, r := BestCandidate(bids, nil); p != 0 || r != 0 {
		t.Errorf("no candidates: (%v, %v)", p, r)
	}
}

func TestBestCandidateNeverBeatenByMembers(t *testing.T) {
	r := rng.New(13)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		bids := make([]float64, 1+rr.Intn(30))
		for i := range bids {
			bids[i] = r.Uniform(0, 50)
		}
		cands := make([]float64, 1+rr.Intn(10))
		for i := range cands {
			cands[i] = r.Uniform(0, 50)
		}
		_, best := BestCandidate(bids, cands)
		for _, c := range cands {
			if Revenue(bids, c) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearGrid(t *testing.T) {
	g := LinearGrid(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("LinearGrid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestGeometricGrid(t *testing.T) {
	g := GeometricGrid(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-9 {
			t.Errorf("GeometricGrid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestGridPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"linear n<2":    func() { LinearGrid(0, 1, 1) },
		"linear hi<=lo": func() { LinearGrid(1, 1, 3) },
		"geom lo<=0":    func() { GeometricGrid(0, 1, 3) },
		"geom hi<=lo":   func() { GeometricGrid(2, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEpochPricerUpdatesOncePerEpoch(t *testing.T) {
	p := NewEpochPricer(3, AvgSummary, 100)
	if p.PostingPrice() != 100 {
		t.Fatalf("initial price = %v", p.PostingPrice())
	}
	p.ObserveBid(10)
	p.ObserveBid(20)
	if p.PostingPrice() != 100 {
		t.Fatal("price changed mid-epoch")
	}
	p.ObserveBid(30)
	if p.PostingPrice() != 20 {
		t.Fatalf("price after epoch = %v, want 20", p.PostingPrice())
	}
	// Next epoch runs on fresh bids only.
	p.ObserveBid(60)
	p.ObserveBid(60)
	p.ObserveBid(60)
	if p.PostingPrice() != 60 {
		t.Fatalf("second epoch price = %v, want 60", p.PostingPrice())
	}
}

func TestEpochPricerReset(t *testing.T) {
	p := NewEpochPricer(2, MedianSummary, 50)
	p.ObserveBid(1)
	p.ObserveBid(2)
	if p.PostingPrice() == 50 {
		t.Fatal("price did not move")
	}
	p.Reset()
	if p.PostingPrice() != 50 {
		t.Fatalf("reset price = %v", p.PostingPrice())
	}
	// Epoch buffer must be cleared: one more bid must not trigger an update
	// computed from stale bids.
	p.ObserveBid(10)
	if p.PostingPrice() != 50 {
		t.Fatal("stale epoch bids survived Reset")
	}
}

func TestSummaries(t *testing.T) {
	bids := []float64{1, 2, 3, 10}
	if got := AvgSummary(bids); got != 4 {
		t.Errorf("AvgSummary = %v", got)
	}
	if got := MedianSummary(bids); got != 2.5 {
		t.Errorf("MedianSummary = %v", got)
	}
	if got := MedianSummary([]float64{5, 1, 9}); got != 5 {
		t.Errorf("odd MedianSummary = %v", got)
	}
	if got := OptimalSummary(bids); got != 10 {
		// k*b_k: 10, 6, 6, 4 -> price 10.
		t.Errorf("OptimalSummary = %v", got)
	}
	if AvgSummary(nil) != 0 || MedianSummary(nil) != 0 {
		t.Error("empty summaries not zero")
	}
}

func TestEpochPricerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad epoch":   func() { NewEpochPricer(0, AvgSummary, 1) },
		"nil summary": func() { NewEpochPricer(1, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRandomPricerDrawsFromCandidates(t *testing.T) {
	cands := []float64{1, 2, 3}
	p := NewRandomPricer(cands, 2, 42)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		price := p.PostingPrice()
		if price != 1 && price != 2 && price != 3 {
			t.Fatalf("price %v not a candidate", price)
		}
		seen[price] = true
		p.ObserveBid(10)
	}
	if len(seen) != 3 {
		t.Errorf("only saw candidates %v", seen)
	}
}

func TestRandomPricerDeterministicAcrossReset(t *testing.T) {
	p := NewRandomPricer([]float64{1, 2, 3, 4}, 1, 7)
	var first []float64
	for i := 0; i < 20; i++ {
		first = append(first, p.PostingPrice())
		p.ObserveBid(0)
	}
	p.Reset()
	for i := 0; i < 20; i++ {
		if got := p.PostingPrice(); got != first[i] {
			t.Fatalf("after Reset, draw %d = %v, want %v", i, got, first[i])
		}
		p.ObserveBid(0)
	}
}

func TestRandomPricerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no candidates": func() { NewRandomPricer(nil, 1, 1) },
		"bad epoch":     func() { NewRandomPricer([]float64{1}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestOfflineOptimalPricer(t *testing.T) {
	bids := []float64{10, 20, 30}
	p := OfflineOptimalPricer(bids)
	if p.PostingPrice() != 20 {
		t.Fatalf("Opt price = %v, want 20", p.PostingPrice())
	}
	p.ObserveBid(1000) // fixed pricers ignore bids
	if p.PostingPrice() != 20 {
		t.Fatal("FixedPricer moved")
	}
	p.Reset()
	if p.PostingPrice() != 20 {
		t.Fatal("FixedPricer reset changed price")
	}
}

func TestOptBeatsOnlineBaselinesInHindsight(t *testing.T) {
	// Sanity: on any trace, the offline optimal single price collects at
	// least as much as any single candidate price; spot-check against the
	// avg-pricer's final price too.
	r := rng.New(99)
	bids := make([]float64, 300)
	for i := range bids {
		bids[i] = r.Uniform(1, 10)
	}
	optP, optR := OptimalPrice(bids)
	if Revenue(bids, optP) != optR {
		t.Fatalf("Revenue(optP) = %v != optR %v", Revenue(bids, optP), optR)
	}
	avg := AvgSummary(bids)
	if Revenue(bids, avg) > optR {
		t.Fatalf("avg price beat Opt: %v > %v", Revenue(bids, avg), optR)
	}
}

func BenchmarkOptimalPrice(b *testing.B) {
	r := rng.New(1)
	bids := make([]float64, 1000)
	for i := range bids {
		bids[i] = r.Uniform(0, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalPrice(bids)
	}
}
