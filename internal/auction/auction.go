// Package auction implements digital-goods auction primitives from the
// paper's Section 2.3: the offline optimal posting price (Equation 2), the
// posting-price revenue function, candidate price grids, and the simple
// baseline update algorithms (average, median, random) the evaluation
// compares the multiplicative-weights engine against (Figures 4a, 5a).
//
// Data is nonrival: a posting price p allocates to every bid >= p and each
// winner pays exactly p, so revenue at price p is p times the number of
// winning bids.
package auction

import (
	"math"
	"sort"

	"github.com/datamarket/shield/internal/rng"
)

// Revenue returns the revenue a posting price p extracts from bids: p for
// every bid >= p (winners pay the posting price, Section 2.3). A
// non-positive price yields zero revenue: the paper's market never raises
// money from free allocation.
func Revenue(bids []float64, p float64) float64 {
	if p <= 0 {
		return 0
	}
	var winners int
	for _, b := range bids {
		if b >= p {
			winners++
		}
	}
	return p * float64(winners)
}

// OptimalPrice implements Equation 2: it returns the posting price b_k that
// maximizes k*b_k over the k-th largest bids, together with the optimal
// revenue M(b̄). Ties in revenue break toward the larger b_k, as the paper
// specifies. Empty input or all-non-positive bids yield (0, 0).
func OptimalPrice(bids []float64) (price, revenue float64) {
	if len(bids) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(bids))
	copy(sorted, bids)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for k, b := range sorted {
		if b <= 0 {
			break // descending order: no further bid can contribute
		}
		r := float64(k+1) * b
		// Strict > also implements the tie-break: equal revenue at a
		// larger b_k is seen first in the descending scan.
		if r > revenue {
			revenue = r
			price = b
		}
	}
	return price, revenue
}

// OptimalRevenue returns only M(b̄) from Equation 2.
func OptimalRevenue(bids []float64) float64 {
	_, r := OptimalPrice(bids)
	return r
}

// BestCandidate returns the candidate price with maximum revenue on bids
// and that revenue (the best expert in hindsight for an MW engine whose
// experts are candidates). Ties break toward the larger price. An empty
// candidate set yields (0, 0).
func BestCandidate(bids, candidates []float64) (price, revenue float64) {
	for _, c := range candidates {
		r := Revenue(bids, c)
		if r > revenue || (r == revenue && c > price) {
			revenue = r
			price = c
		}
	}
	return price, revenue
}

// LinearGrid returns n evenly spaced candidate prices spanning [lo, hi]
// inclusive. It panics if n < 2 or hi <= lo. Posting-price candidates for
// the MW engine are typically built with this.
func LinearGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("auction: LinearGrid needs n >= 2")
	}
	if hi <= lo {
		panic("auction: LinearGrid needs hi > lo")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulation error on the top candidate
	return out
}

// GeometricGrid returns n geometrically spaced candidates spanning
// [lo, hi] inclusive, for markets whose valuations span orders of
// magnitude. It panics if n < 2, lo <= 0 or hi <= lo.
func GeometricGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("auction: GeometricGrid needs n >= 2")
	}
	if lo <= 0 || hi <= lo {
		panic("auction: GeometricGrid needs 0 < lo < hi")
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	out[n-1] = hi
	return out
}

// StreamPricer is an online posting-price algorithm: the arbiter reads the
// current posting price before each allocation decision and feeds every
// incoming bid to ObserveBid afterwards (prices must be chosen before bids
// arrive, Section 2.3).
type StreamPricer interface {
	// PostingPrice returns the price in force for the next bid.
	PostingPrice() float64
	// ObserveBid records an incoming bid, possibly updating the price.
	ObserveBid(b float64)
	// Reset restores the pricer to its initial state.
	Reset()
}

// SummaryFunc reduces an epoch of bids to a posting price.
type SummaryFunc func(bids []float64) float64

// EpochPricer updates its posting price once per epoch of E bids by
// applying a summary function to the epoch's bids. With Avg or Median
// summaries it is the strawman update algorithm of Section 3.2/7.3.1; with
// the OptimalSummary it is the Epoch-Shield update rule (price = b_k of the
// last epoch) without multiplicative weights.
type EpochPricer struct {
	epochSize int
	summarize SummaryFunc
	initial   float64

	price float64
	epoch []float64
}

// NewEpochPricer returns an EpochPricer with the given epoch size E >= 1,
// summary function, and initial posting price (in force until the first
// epoch completes).
func NewEpochPricer(epochSize int, summarize SummaryFunc, initial float64) *EpochPricer {
	if epochSize < 1 {
		panic("auction: epoch size must be >= 1")
	}
	if summarize == nil {
		panic("auction: nil summary function")
	}
	return &EpochPricer{
		epochSize: epochSize,
		summarize: summarize,
		initial:   initial,
		price:     initial,
		epoch:     make([]float64, 0, epochSize),
	}
}

// PostingPrice implements StreamPricer.
func (e *EpochPricer) PostingPrice() float64 { return e.price }

// ObserveBid implements StreamPricer.
func (e *EpochPricer) ObserveBid(b float64) {
	e.epoch = append(e.epoch, b)
	if len(e.epoch) < e.epochSize {
		return
	}
	e.price = e.summarize(e.epoch)
	e.epoch = e.epoch[:0]
}

// Reset implements StreamPricer.
func (e *EpochPricer) Reset() {
	e.price = e.initial
	e.epoch = e.epoch[:0]
}

// AvgSummary prices the next epoch at the mean of the current epoch's bids
// (the "avg" baseline of Section 7.3.1).
func AvgSummary(bids []float64) float64 {
	if len(bids) == 0 {
		return 0
	}
	var s float64
	for _, b := range bids {
		s += b
	}
	return s / float64(len(bids))
}

// MedianSummary prices the next epoch at the median bid (the "p50"
// baseline of Section 7.3.1).
func MedianSummary(bids []float64) float64 {
	n := len(bids)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, bids)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// OptimalSummary prices the next epoch at the revenue-optimal price of the
// current epoch (Equation 2 applied per epoch — the Epoch-Shield update
// algorithm of Section 3.2 without multiplicative weights).
func OptimalSummary(bids []float64) float64 {
	p, _ := OptimalPrice(bids)
	return p
}

// RandomPricer draws a fresh uniformly random candidate price after every
// epoch, ignoring bids entirely (the "Random" baseline of Figure 4a: full
// protection, no learning).
type RandomPricer struct {
	candidates []float64
	epochSize  int
	rng        *rng.RNG
	seed       uint64

	price float64
	seen  int
}

// NewRandomPricer returns a RandomPricer drawing from candidates every
// epochSize bids, seeded deterministically.
func NewRandomPricer(candidates []float64, epochSize int, seed uint64) *RandomPricer {
	if len(candidates) == 0 {
		panic("auction: RandomPricer needs candidates")
	}
	if epochSize < 1 {
		panic("auction: epoch size must be >= 1")
	}
	cp := make([]float64, len(candidates))
	copy(cp, candidates)
	p := &RandomPricer{candidates: cp, epochSize: epochSize, seed: seed}
	p.Reset()
	return p
}

// PostingPrice implements StreamPricer.
func (p *RandomPricer) PostingPrice() float64 { return p.price }

// ObserveBid implements StreamPricer.
func (p *RandomPricer) ObserveBid(float64) {
	p.seen++
	if p.seen%p.epochSize == 0 {
		p.price = p.candidates[p.rng.Intn(len(p.candidates))]
	}
}

// Reset implements StreamPricer.
func (p *RandomPricer) Reset() {
	p.rng = rng.New(p.seed)
	p.seen = 0
	p.price = p.candidates[p.rng.Intn(len(p.candidates))]
}

// FixedPricer posts a constant price forever; OfflineOptimalPricer built
// from a full bid trace is the paper's "Opt" baseline.
type FixedPricer struct{ P float64 }

// PostingPrice implements StreamPricer.
func (f FixedPricer) PostingPrice() float64 { return f.P }

// ObserveBid implements StreamPricer.
func (FixedPricer) ObserveBid(float64) {}

// Reset implements StreamPricer.
func (FixedPricer) Reset() {}

// OfflineOptimalPricer returns the Opt baseline: the fixed posting price
// that is revenue-optimal in hindsight for the whole bid trace
// (Equation 2 applied to all bids at once).
func OfflineOptimalPricer(allBids []float64) FixedPricer {
	p, _ := OptimalPrice(allBids)
	return FixedPricer{P: p}
}
