package auction

import (
	"math"
	"testing"
)

// decodeBids turns fuzz bytes into a small bid vector with a mix of
// magnitudes, including zeros and negatives.
func decodeBids(data []byte) []float64 {
	bids := make([]float64, 0, len(data))
	for i, b := range data {
		v := float64(int(b)-32) * (1 + float64(i%7))
		bids = append(bids, v)
	}
	return bids
}

func FuzzOptimalPrice(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 128})
	f.Add([]byte("the quick brown fox"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		bids := decodeBids(data)
		price, revenue := OptimalPrice(bids)
		if math.IsNaN(price) || math.IsNaN(revenue) {
			t.Fatalf("NaN output: %v %v", price, revenue)
		}
		if revenue < 0 || price < 0 {
			t.Fatalf("negative output: price %v revenue %v", price, revenue)
		}
		// Self-consistency: the reported revenue is what the reported
		// price extracts.
		if revenue > 0 && math.Abs(Revenue(bids, price)-revenue) > 1e-6 {
			t.Fatalf("Revenue(price)=%v != optimal %v", Revenue(bids, price), revenue)
		}
		// No single bid value beats the optimum.
		for _, b := range bids {
			if Revenue(bids, b) > revenue+1e-6 {
				t.Fatalf("bid %v beats optimum %v", b, revenue)
			}
		}
		// Claim 1: splitting never lowers total optimal revenue.
		if len(bids) >= 2 {
			mid := len(bids) / 2
			if OptimalRevenue(bids[:mid])+OptimalRevenue(bids[mid:]) < revenue-1e-6 {
				t.Fatal("partition superadditivity violated")
			}
		}
	})
}

func FuzzEpochPricerNeverPanics(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		for _, summarize := range []SummaryFunc{AvgSummary, MedianSummary, OptimalSummary} {
			p := NewEpochPricer(3, summarize, 10)
			for _, b := range decodeBids(data) {
				p.ObserveBid(b)
				if math.IsNaN(p.PostingPrice()) {
					t.Fatal("NaN posting price")
				}
			}
		}
	})
}
