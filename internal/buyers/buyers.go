// Package buyers implements adaptive buyer strategies for market-level
// simulations: truthful bidders, the strategic low-ball-then-truthful
// buyers of Section 4.1, and the boundedly-rational leak-reactive bidders
// Uncertainty-Shield targets (Section 5).
//
// Strategies are pure decision rules: each period the driver asks for the
// next bid and reports the outcome back. The static stream transform in
// internal/timeseries reproduces the paper's simulations; these adaptive
// agents exercise the full market loop (wait enforcement, reactions to
// Time-Shield) in integration tests, examples, and ablations.
package buyers

import (
	"fmt"

	"github.com/datamarket/shield/internal/rng"
)

// Outcome reports what happened to a strategy's previous bid.
type Outcome struct {
	// Period is the market period the bid was submitted in.
	Period int
	// Bid reports whether a bid was actually submitted.
	Bid bool
	// Won reports whether the bid was allocated.
	Won bool
	// PricePaid is the posting price paid if Won.
	PricePaid float64
	// Wait is the Time-Shield wait-period assigned if the bid lost.
	Wait int
}

// Context is what a strategy may observe when choosing its next bid.
type Context struct {
	// Period is the current market period.
	Period int
	// Deadline is the buyer's private deadline tau_i; after it the
	// dataset is worthless (Equation 1).
	Deadline int
	// LeakedPrice, when >= 0, is a recently observed sale price for the
	// dataset (the leak of RQ2/RQ3). Negative means no leak observed.
	LeakedPrice float64
}

// Strategy decides one buyer's bidding for one dataset.
type Strategy interface {
	// NextBid returns the bid amount for this period; ok=false passes
	// the period (e.g. the buyer is done or deliberately waiting).
	NextBid(ctx Context) (amount float64, ok bool)
	// Observe reports the outcome of the buyer's last action; drivers
	// call it exactly once per NextBid that returned ok=true.
	Observe(o Outcome)
	// Valuation returns the buyer's private valuation v_i.
	Valuation() float64
}

// Truthful bids the private valuation at every opportunity until it wins:
// the paper's baseline rational behavior under a posting-price mechanism.
type Truthful struct {
	v   float64
	won bool
}

// NewTruthful returns a truthful bidder with valuation v.
func NewTruthful(v float64) *Truthful {
	if !(v > 0) {
		panic(fmt.Sprintf("buyers: valuation %v must be > 0", v))
	}
	return &Truthful{v: v}
}

// NextBid implements Strategy.
func (t *Truthful) NextBid(ctx Context) (float64, bool) {
	if t.won || ctx.Period > ctx.Deadline {
		return 0, false
	}
	return t.v, true
}

// Observe implements Strategy.
func (t *Truthful) Observe(o Outcome) {
	if o.Won {
		t.won = true
	}
}

// Valuation implements Strategy.
func (t *Truthful) Valuation() float64 { return t.v }

// Strategic is the Section 4.1 buyer: it bids Beta*v to drive prices down
// while it still has spare opportunities, switching to the truthful bid at
// its last chance. When Cautious, a Time-Shield wait makes it turn
// truthful for all remaining opportunities — the behavioral shift the
// user study documents in RQ5 ("buyers know they may lose the opportunity
// to acquire the dataset").
type Strategic struct {
	v        float64
	beta     float64
	floor    float64
	cautious bool

	won bool
	// blockedUntil is the first period the buyer may bid again after a
	// Time-Shield wait.
	blockedUntil int
	// scared is set when a cautious buyer has been made to wait.
	scared bool
}

// NewStrategic returns a strategic bidder with valuation v, strategic
// multiplier beta in [0, 1], and bid floor. A cautious buyer abandons
// strategizing after its first Time-Shield wait.
func NewStrategic(v, beta, floor float64, cautious bool) *Strategic {
	if !(v > 0) {
		panic(fmt.Sprintf("buyers: valuation %v must be > 0", v))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("buyers: beta %v outside [0, 1]", beta))
	}
	if floor < 0 {
		panic(fmt.Sprintf("buyers: floor %v must be >= 0", floor))
	}
	return &Strategic{v: v, beta: beta, floor: floor, cautious: cautious}
}

// NextBid implements Strategy.
func (s *Strategic) NextBid(ctx Context) (float64, bool) {
	if s.won || ctx.Period > ctx.Deadline {
		return 0, false
	}
	if ctx.Period < s.blockedUntil {
		return 0, false // Time-Shield wait still active
	}
	// Opportunities left if bidding every remaining period.
	left := ctx.Deadline - ctx.Period + 1
	if left <= 1 || (s.cautious && s.scared) {
		return s.v, true // last chance (or scared straight): truthful bid
	}
	low := s.beta * s.v
	if low < s.floor {
		low = s.floor
	}
	return low, true
}

// Observe implements Strategy.
func (s *Strategic) Observe(o Outcome) {
	if o.Won {
		s.won = true
		return
	}
	if o.Bid && o.Wait > 0 {
		s.blockedUntil = o.Period + o.Wait
		s.scared = true
	}
}

// Valuation implements Strategy.
func (s *Strategic) Valuation() float64 { return s.v }

// LeakReactive is the boundedly-rational bidder of Section 5: it intends
// to bid truthfully, but when it observes a leaked price and knows prices
// follow past bids, it anchors its bid near the leak instead — the
// behavior that harms future posting prices even though it cannot improve
// the buyer's own utility. Sensitivity in [0, 1] interpolates between
// fully truthful (0) and fully anchored (1).
type LeakReactive struct {
	v           float64
	sensitivity float64
	margin      float64
	won         bool
}

// NewLeakReactive returns a leak-reactive bidder. margin is the small
// headroom the buyer adds above the leaked price (e.g. 0.05 for 5%).
func NewLeakReactive(v, sensitivity, margin float64) *LeakReactive {
	if !(v > 0) {
		panic(fmt.Sprintf("buyers: valuation %v must be > 0", v))
	}
	if sensitivity < 0 || sensitivity > 1 {
		panic(fmt.Sprintf("buyers: sensitivity %v outside [0, 1]", sensitivity))
	}
	if margin < 0 {
		panic(fmt.Sprintf("buyers: margin %v must be >= 0", margin))
	}
	return &LeakReactive{v: v, sensitivity: sensitivity, margin: margin}
}

// NextBid implements Strategy.
func (l *LeakReactive) NextBid(ctx Context) (float64, bool) {
	if l.won || ctx.Period > ctx.Deadline {
		return 0, false
	}
	if ctx.LeakedPrice < 0 {
		return l.v, true
	}
	anchor := ctx.LeakedPrice * (1 + l.margin)
	if anchor > l.v {
		// Anchoring never pushes a bid above the truthful value.
		anchor = l.v
	}
	return (1-l.sensitivity)*l.v + l.sensitivity*anchor, true
}

// Observe implements Strategy.
func (l *LeakReactive) Observe(o Outcome) {
	if o.Won {
		l.won = true
	}
}

// Valuation implements Strategy.
func (l *LeakReactive) Valuation() float64 { return l.v }

// Sniper stays out of the market entirely until just before its
// deadline, then bids truthfully: a timing strategy that avoids leaking
// demand information early (and, against Time-Shield, avoids ever
// incurring a wait from a strategic low bid). Lead is how many periods
// before the deadline it starts bidding (>= 0; 0 bids only at the
// deadline itself).
type Sniper struct {
	v    float64
	lead int
	won  bool
}

// NewSniper returns a sniping bidder with valuation v that starts
// bidding lead periods before the deadline.
func NewSniper(v float64, lead int) *Sniper {
	if !(v > 0) {
		panic(fmt.Sprintf("buyers: valuation %v must be > 0", v))
	}
	if lead < 0 {
		panic(fmt.Sprintf("buyers: lead %d must be >= 0", lead))
	}
	return &Sniper{v: v, lead: lead}
}

// NextBid implements Strategy.
func (s *Sniper) NextBid(ctx Context) (float64, bool) {
	if s.won || ctx.Period > ctx.Deadline {
		return 0, false
	}
	if ctx.Period < ctx.Deadline-s.lead {
		return 0, false // lurking
	}
	return s.v, true
}

// Observe implements Strategy.
func (s *Sniper) Observe(o Outcome) {
	if o.Won {
		s.won = true
	}
}

// Valuation implements Strategy.
func (s *Sniper) Valuation() float64 { return s.v }

// Noisy is a near-truthful bidder: valuation plus zero-mean noise,
// clamped to the valid range [floor, 2v] the user study allows. It models
// the RQ1 finding that real participants bid near, but not exactly at,
// their valuation.
type Noisy struct {
	v     float64
	sd    float64
	floor float64
	rand  *rng.RNG
	won   bool
}

// NewNoisy returns a near-truthful bidder whose bids are
// N(v, sd) clamped to [floor, 2v].
func NewNoisy(v, sd, floor float64, r *rng.RNG) *Noisy {
	if !(v > 0) {
		panic(fmt.Sprintf("buyers: valuation %v must be > 0", v))
	}
	if sd < 0 || floor < 0 {
		panic("buyers: sd and floor must be >= 0")
	}
	if r == nil {
		panic("buyers: nil RNG")
	}
	return &Noisy{v: v, sd: sd, floor: floor, rand: r}
}

// NextBid implements Strategy.
func (n *Noisy) NextBid(ctx Context) (float64, bool) {
	if n.won || ctx.Period > ctx.Deadline {
		return 0, false
	}
	b := n.rand.Normal(n.v, n.sd)
	if b < n.floor {
		b = n.floor
	}
	if b > 2*n.v {
		b = 2 * n.v
	}
	return b, true
}

// Observe implements Strategy.
func (n *Noisy) Observe(o Outcome) {
	if o.Won {
		n.won = true
	}
}

// Valuation implements Strategy.
func (n *Noisy) Valuation() float64 { return n.v }
