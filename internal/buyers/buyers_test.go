package buyers

import (
	"fmt"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
)

func TestTruthfulBidsValuationUntilWin(t *testing.T) {
	s := NewTruthful(100)
	ctx := Context{Period: 0, Deadline: 5, LeakedPrice: -1}
	b, ok := s.NextBid(ctx)
	if !ok || b != 100 {
		t.Fatalf("NextBid = %v, %v", b, ok)
	}
	s.Observe(Outcome{Period: 0, Bid: true, Won: false, Wait: 2})
	if b, ok := s.NextBid(Context{Period: 3, Deadline: 5, LeakedPrice: -1}); !ok || b != 100 {
		t.Fatalf("after loss: %v, %v", b, ok)
	}
	s.Observe(Outcome{Period: 3, Bid: true, Won: true, PricePaid: 80})
	if _, ok := s.NextBid(Context{Period: 4, Deadline: 5}); ok {
		t.Fatal("winner kept bidding")
	}
}

func TestTruthfulStopsAfterDeadline(t *testing.T) {
	s := NewTruthful(100)
	if _, ok := s.NextBid(Context{Period: 6, Deadline: 5}); ok {
		t.Fatal("bid after deadline")
	}
	if s.Valuation() != 100 {
		t.Fatal("valuation")
	}
}

func TestStrategicLowballsThenTruthful(t *testing.T) {
	s := NewStrategic(100, 0.2, 1, false)
	// Plenty of opportunities left: low bid.
	if b, ok := s.NextBid(Context{Period: 0, Deadline: 4, LeakedPrice: -1}); !ok || b != 20 {
		t.Fatalf("early bid = %v, %v", b, ok)
	}
	// Last chance: truthful.
	if b, ok := s.NextBid(Context{Period: 4, Deadline: 4, LeakedPrice: -1}); !ok || b != 100 {
		t.Fatalf("final bid = %v, %v", b, ok)
	}
}

func TestStrategicFloorsItsLowBid(t *testing.T) {
	s := NewStrategic(100, 0, 3, false)
	if b, _ := s.NextBid(Context{Period: 0, Deadline: 9}); b != 3 {
		t.Fatalf("floored bid = %v", b)
	}
}

func TestStrategicRespectsWait(t *testing.T) {
	s := NewStrategic(100, 0.2, 1, false)
	s.Observe(Outcome{Period: 2, Bid: true, Won: false, Wait: 3})
	if _, ok := s.NextBid(Context{Period: 3, Deadline: 20}); ok {
		t.Fatal("bid during wait")
	}
	if _, ok := s.NextBid(Context{Period: 4, Deadline: 20}); ok {
		t.Fatal("bid during wait")
	}
	if b, ok := s.NextBid(Context{Period: 5, Deadline: 20}); !ok || b != 20 {
		t.Fatalf("bid after wait = %v, %v", b, ok)
	}
}

func TestCautiousStrategicTurnsTruthfulAfterWait(t *testing.T) {
	s := NewStrategic(100, 0.2, 1, true)
	if b, _ := s.NextBid(Context{Period: 0, Deadline: 20}); b != 20 {
		t.Fatalf("pre-wait bid = %v", b)
	}
	s.Observe(Outcome{Period: 0, Bid: true, Won: false, Wait: 2})
	if b, ok := s.NextBid(Context{Period: 2, Deadline: 20}); !ok || b != 100 {
		t.Fatalf("post-wait bid = %v, %v (want truthful 100)", b, ok)
	}
}

func TestStrategicStopsAfterWin(t *testing.T) {
	s := NewStrategic(100, 0.2, 1, false)
	s.Observe(Outcome{Period: 0, Bid: true, Won: true, PricePaid: 15})
	if _, ok := s.NextBid(Context{Period: 1, Deadline: 9}); ok {
		t.Fatal("winner kept bidding")
	}
}

func TestLeakReactiveAnchorsToLeak(t *testing.T) {
	l := NewLeakReactive(100, 1, 0.05)
	// Full sensitivity: bid = leak * 1.05.
	if b, _ := l.NextBid(Context{Period: 0, Deadline: 5, LeakedPrice: 60}); b != 63 {
		t.Fatalf("anchored bid = %v, want 63", b)
	}
	// No leak: truthful.
	if b, _ := l.NextBid(Context{Period: 0, Deadline: 5, LeakedPrice: -1}); b != 100 {
		t.Fatalf("no-leak bid = %v", b)
	}
	// Anchor never exceeds valuation.
	if b, _ := l.NextBid(Context{Period: 0, Deadline: 5, LeakedPrice: 200}); b != 100 {
		t.Fatalf("high-leak bid = %v", b)
	}
	// Half sensitivity interpolates.
	h := NewLeakReactive(100, 0.5, 0)
	if b, _ := h.NextBid(Context{Period: 0, Deadline: 5, LeakedPrice: 60}); b != 80 {
		t.Fatalf("half-sensitive bid = %v, want 80", b)
	}
	h.Observe(Outcome{Won: true})
	if _, ok := h.NextBid(Context{Period: 1, Deadline: 5}); ok {
		t.Fatal("winner kept bidding")
	}
	if h.Valuation() != 100 {
		t.Fatal("valuation")
	}
}

func TestNoisyStaysInValidRange(t *testing.T) {
	r := rng.New(11)
	n := NewNoisy(100, 40, 1, r)
	for i := 0; i < 2000; i++ {
		b, ok := n.NextBid(Context{Period: 0, Deadline: 5, LeakedPrice: -1})
		if !ok {
			t.Fatal("refused to bid")
		}
		if b < 1 || b > 200 {
			t.Fatalf("bid %v outside [1, 200]", b)
		}
	}
	n.Observe(Outcome{Won: true})
	if _, ok := n.NextBid(Context{Period: 1, Deadline: 5}); ok {
		t.Fatal("winner kept bidding")
	}
	if n.Valuation() != 100 {
		t.Fatal("valuation")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"truthful v=0":    func() { NewTruthful(0) },
		"strategic v=0":   func() { NewStrategic(0, 0.5, 0, false) },
		"strategic beta":  func() { NewStrategic(10, 2, 0, false) },
		"strategic floor": func() { NewStrategic(10, 0.5, -1, false) },
		"leak v=0":        func() { NewLeakReactive(0, 0.5, 0) },
		"leak sens":       func() { NewLeakReactive(10, 2, 0) },
		"leak margin":     func() { NewLeakReactive(10, 0.5, -1) },
		"noisy v=0":       func() { NewNoisy(0, 1, 0, rng.New(1)) },
		"noisy sd":        func() { NewNoisy(10, -1, 0, rng.New(1)) },
		"noisy nil rng":   func() { NewNoisy(10, 1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func sessionMarket(t *testing.T) *market.Market {
	t.Helper()
	m := market.MustNew(market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 4, // several buyers bid each period
			MinBid:        1,
		},
		Seed: 3,
	})
	if err := m.RegisterSeller("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadDataset("s", "d"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSessionTruthfulBuyersMostlyWin(t *testing.T) {
	m := sessionMarket(t)
	var parts []Participant
	for i := 0; i < 12; i++ {
		id := market.BuyerID(fmt.Sprintf("b%d", i))
		if err := m.RegisterBuyer(id); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, Participant{
			ID:       id,
			Strategy: NewTruthful(95), // above nearly every candidate
			Deadline: 19,
		})
	}
	res, err := RunSession(m, "d", parts, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winners < 10 {
		t.Fatalf("only %d/12 truthful high-value buyers won", res.Winners)
	}
	if res.Revenue <= 0 {
		t.Fatal("no revenue")
	}
	for id, u := range res.Utility {
		if u < 0 {
			t.Fatalf("%s has negative utility %v", id, u)
		}
	}
}

func TestRunSessionValidation(t *testing.T) {
	m := sessionMarket(t)
	if _, err := RunSession(m, "d", nil, 0); err == nil {
		t.Fatal("periods=0 accepted")
	}
	if _, err := RunSession(m, "d", []Participant{{ID: "x"}}, 1); err == nil {
		t.Fatal("nil strategy accepted")
	}
	if err := m.RegisterBuyer("b"); err != nil {
		t.Fatal(err)
	}
	// Unknown dataset surfaces the market error.
	if _, err := RunSession(m, "nope", []Participant{{ID: "b", Strategy: NewTruthful(50), Deadline: 3}}, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunSessionStrategicVsTruthfulRevenue(t *testing.T) {
	// A market of strategic low-ballers should raise less revenue than
	// the same market with truthful buyers.
	run := func(strategic bool) market.Money {
		m := sessionMarket(t)
		var parts []Participant
		for i := 0; i < 10; i++ {
			id := market.BuyerID(fmt.Sprintf("b%d", i))
			if err := m.RegisterBuyer(id); err != nil {
				t.Fatal(err)
			}
			var s Strategy
			if strategic {
				s = NewStrategic(95, 0.1, 1, false)
			} else {
				s = NewTruthful(95)
			}
			parts = append(parts, Participant{ID: id, Strategy: s, Deadline: 29})
		}
		res, err := RunSession(m, "d", parts, 30)
		if err != nil {
			t.Fatal(err)
		}
		return res.Revenue
	}
	truthful := run(false)
	strategic := run(true)
	if strategic >= truthful {
		t.Fatalf("strategic revenue %v >= truthful %v", strategic, truthful)
	}
}

func TestSniperLurksThenStrikes(t *testing.T) {
	s := NewSniper(100, 2)
	// Far from the deadline: no bid.
	if _, ok := s.NextBid(Context{Period: 0, Deadline: 10}); ok {
		t.Fatal("sniper bid early")
	}
	if _, ok := s.NextBid(Context{Period: 7, Deadline: 10}); ok {
		t.Fatal("sniper bid before its lead window")
	}
	// Within lead periods of the deadline: truthful bid.
	for _, p := range []int{8, 9, 10} {
		if b, ok := s.NextBid(Context{Period: p, Deadline: 10}); !ok || b != 100 {
			t.Fatalf("period %d: bid %v, %v", p, b, ok)
		}
	}
	// After deadline or after a win: silent.
	if _, ok := s.NextBid(Context{Period: 11, Deadline: 10}); ok {
		t.Fatal("sniper bid after deadline")
	}
	s.Observe(Outcome{Won: true})
	if _, ok := s.NextBid(Context{Period: 9, Deadline: 10}); ok {
		t.Fatal("winner kept bidding")
	}
	if s.Valuation() != 100 {
		t.Fatal("valuation")
	}
}

func TestSniperZeroLeadBidsOnlyAtDeadline(t *testing.T) {
	s := NewSniper(50, 0)
	if _, ok := s.NextBid(Context{Period: 4, Deadline: 5}); ok {
		t.Fatal("lead-0 sniper bid before deadline")
	}
	if b, ok := s.NextBid(Context{Period: 5, Deadline: 5}); !ok || b != 50 {
		t.Fatalf("deadline bid: %v, %v", b, ok)
	}
}

func TestSniperConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"v=0":      func() { NewSniper(0, 1) },
		"negative": func() { NewSniper(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
