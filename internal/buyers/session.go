package buyers

import (
	"errors"
	"fmt"

	"github.com/datamarket/shield/internal/market"
)

// Participant pairs a registered buyer with its strategy and private
// deadline for one dataset.
type Participant struct {
	ID       market.BuyerID
	Strategy Strategy
	Deadline int
}

// SessionResult summarizes a bidding session on one dataset.
type SessionResult struct {
	// Utility is each participant's realized Equation-1 utility.
	Utility map[market.BuyerID]float64
	// Revenue is the revenue the dataset raised during the session.
	Revenue market.Money
	// Winners counts participants who acquired the dataset.
	Winners int
	// Periods is the number of periods simulated.
	Periods int
}

// RunSession drives the participants against one dataset for the given
// number of periods, advancing the market clock once per period. Each
// period every participant still in the game is offered one bid. The
// participants must already be registered with the market.
func RunSession(m *market.Market, dataset market.DatasetID, parts []Participant, periods int) (SessionResult, error) {
	if periods < 1 {
		return SessionResult{}, errors.New("buyers: periods must be >= 1")
	}
	res := SessionResult{
		Utility: make(map[market.BuyerID]float64, len(parts)),
		Periods: periods,
	}
	for _, p := range parts {
		if p.Strategy == nil {
			return SessionResult{}, fmt.Errorf("buyers: participant %s has nil strategy", p.ID)
		}
		res.Utility[p.ID] = 0
	}
	startRevenue := m.Revenue()

	for t := 0; t < periods; t++ {
		period := m.Period()
		for _, p := range parts {
			ctx := Context{Period: period, Deadline: p.Deadline, LeakedPrice: -1}
			amount, ok := p.Strategy.NextBid(ctx)
			if !ok {
				continue
			}
			d, err := m.SubmitBid(p.ID, dataset, amount)
			switch {
			case err == nil:
				p.Strategy.Observe(Outcome{
					Period:    period,
					Bid:       true,
					Won:       d.Allocated,
					PricePaid: d.PricePaid.Float(),
					Wait:      d.WaitPeriods,
				})
				if d.Allocated {
					res.Winners++
					res.Utility[p.ID] = market.Utility(
						p.Strategy.Valuation(), d.PricePaid.Float(), true, period, p.Deadline)
				}
			case errors.Is(err, market.ErrWaitActive),
				errors.Is(err, market.ErrBidTooSoon),
				errors.Is(err, market.ErrAlreadyAcquired):
				// The market blocked the bid; tell the strategy nothing
				// happened this period.
				p.Strategy.Observe(Outcome{Period: period})
			default:
				return SessionResult{}, fmt.Errorf("buyers: bid by %s: %w", p.ID, err)
			}
		}
		m.Tick()
	}
	res.Revenue = m.Revenue() - startRevenue
	return res, nil
}
