package provenance

import (
	"errors"
	"testing"
)

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, id := range []string{"d1", "d2", "d3"} {
		if err := g.AddBase(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddDerived("d12", "d1", "d2"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDerived("d123", "d12", "d3"); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddBaseDuplicate(t *testing.T) {
	g := NewGraph()
	if err := g.AddBase("d1"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBase("d1"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate base: %v", err)
	}
}

func TestAddDerivedErrors(t *testing.T) {
	g := NewGraph()
	if err := g.AddBase("d1"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDerived("x", "missing"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown constituent: %v", err)
	}
	if err := g.AddDerived("x"); err == nil {
		t.Fatal("empty constituents accepted")
	}
	if err := g.AddDerived("x", "x"); !errors.Is(err, ErrCycle) {
		t.Fatalf("self reference: %v", err)
	}
	if err := g.AddDerived("d2", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDerived("d2", "d1"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate derived: %v", err)
	}
}

func TestContainsAndIsBase(t *testing.T) {
	g := buildGraph(t)
	if !g.Contains("d1") || g.Contains("nope") {
		t.Error("Contains broken")
	}
	if !g.IsBase("d1") || g.IsBase("d12") || g.IsBase("nope") {
		t.Error("IsBase broken")
	}
	if g.Len() != 5 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestConstituents(t *testing.T) {
	g := buildGraph(t)
	cs, ok := g.Constituents("d12")
	if !ok || len(cs) != 2 || cs[0] != "d1" || cs[1] != "d2" {
		t.Fatalf("Constituents(d12) = %v, %v", cs, ok)
	}
	// Mutating the returned slice must not corrupt the graph.
	cs[0] = "hacked"
	cs2, _ := g.Constituents("d12")
	if cs2[0] != "d1" {
		t.Fatal("Constituents leaked internal state")
	}
	if _, ok := g.Constituents("nope"); ok {
		t.Fatal("unknown dataset reported constituents")
	}
}

func TestLeaves(t *testing.T) {
	g := buildGraph(t)
	cases := map[string][]string{
		"d1":   {"d1"},
		"d12":  {"d1", "d2"},
		"d123": {"d1", "d2", "d3"},
	}
	for id, want := range cases {
		got, err := g.Leaves(id)
		if err != nil {
			t.Fatalf("Leaves(%s): %v", id, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Leaves(%s) = %v", id, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Leaves(%s) = %v, want %v", id, got, want)
			}
		}
	}
	if _, err := g.Leaves("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown leaves: %v", err)
	}
}

func TestLeavesDeduplicatesSharedConstituents(t *testing.T) {
	g := NewGraph()
	for _, id := range []string{"a", "b"} {
		if err := g.AddBase(id); err != nil {
			t.Fatal(err)
		}
	}
	// Diamond: two derived datasets both built on a, combined again.
	if err := g.AddDerived("ab", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDerived("aa", "a", "ab"); err != nil {
		t.Fatal(err)
	}
	leaves, err := g.Leaves("aa")
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 || leaves[0] != "a" || leaves[1] != "b" {
		t.Fatalf("diamond leaves = %v", leaves)
	}
}

func TestShares(t *testing.T) {
	g := buildGraph(t)
	shares, err := g.Shares("d123")
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("shares = %v", shares)
	}
	var total float64
	for id, s := range shares {
		if s <= 0 || s > 1 {
			t.Fatalf("share of %s = %v", id, s)
		}
		total += s
	}
	if total < 0.999999 || total > 1.000001 {
		t.Fatalf("shares sum to %v", total)
	}
	// Base dataset keeps the full sale.
	own, err := g.Shares("d1")
	if err != nil || own["d1"] != 1 {
		t.Fatalf("base shares = %v, %v", own, err)
	}
	if _, err := g.Shares("nope"); err == nil {
		t.Fatal("unknown shares accepted")
	}
}

func TestDependents(t *testing.T) {
	g := buildGraph(t)
	deps, err := g.Dependents("d1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"d1", "d12", "d123"}
	if len(deps) != len(want) {
		t.Fatalf("Dependents(d1) = %v", deps)
	}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("Dependents(d1) = %v, want %v", deps, want)
		}
	}
	deps3, err := g.Dependents("d3")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps3) != 2 || deps3[0] != "d123" || deps3[1] != "d3" {
		t.Fatalf("Dependents(d3) = %v", deps3)
	}
	if _, err := g.Dependents("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown dependents: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := buildGraph(t)
	snap := g.Snapshot()
	// Mutating the snapshot must not affect the graph.
	snap["d12"][0] = "hacked"
	cs, _ := g.Constituents("d12")
	if cs[0] != "d1" {
		t.Fatal("Snapshot leaked internal state")
	}

	g2, err := FromSnapshot(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("len %d vs %d", g2.Len(), g.Len())
	}
	l1, _ := g.Leaves("d123")
	l2, err := g2.Leaves("d123")
	if err != nil || len(l1) != len(l2) {
		t.Fatalf("leaves differ: %v vs %v (%v)", l1, l2, err)
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	// Unknown constituent.
	if _, err := FromSnapshot(map[string][]string{"a": {"missing"}}); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown constituent: %v", err)
	}
	// Cycle.
	if _, err := FromSnapshot(map[string][]string{
		"a": {"b"}, "b": {"a"},
	}); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
	// Self-cycle.
	if _, err := FromSnapshot(map[string][]string{"a": {"a"}}); !errors.Is(err, ErrCycle) {
		t.Errorf("self cycle: %v", err)
	}
	// Valid diamond.
	g, err := FromSnapshot(map[string][]string{
		"a": nil, "b": nil, "ab": {"a", "b"}, "aab": {"a", "ab"},
	})
	if err != nil || g.Len() != 4 {
		t.Fatalf("diamond rejected: %v", err)
	}
}

func TestRemove(t *testing.T) {
	g := buildGraph(t)
	// d1 backs d12: refuse.
	if err := g.Remove("d1"); err == nil {
		t.Fatal("removed a constituent in use")
	}
	// Top-level derived removes fine, then its constituent frees up.
	if err := g.Remove("d123"); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove("d12"); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove("d1"); err != nil {
		t.Fatal(err)
	}
	if g.Contains("d1") || g.Len() != 2 {
		t.Fatalf("graph after removals: len %d", g.Len())
	}
	if err := g.Remove("missing"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("remove unknown: %v", err)
	}
}
