// Package provenance tracks how combined datasets are derived from base
// datasets (Figure 1, step 3): the arbiter combines seller-uploaded
// datasets into derived products, and a bid on a derived dataset d'
// propagates to the datasets used to produce it (footnote 2 of the paper
// notes this is a provenance problem — this package is that substrate).
//
// The graph is a DAG: a derived dataset lists its direct constituents, and
// Leaves resolves any dataset to the base datasets that ultimately back
// it, which is what the market uses to split sale revenue among sellers.
package provenance

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle reports that adding an edge set would create a cycle.
var ErrCycle = errors.New("provenance: composition would create a cycle")

// ErrUnknown reports a reference to an unregistered dataset.
var ErrUnknown = errors.New("provenance: unknown dataset")

// ErrExists reports a duplicate registration.
var ErrExists = errors.New("provenance: dataset already registered")

// Graph records dataset derivations. The zero value is not usable; call
// NewGraph. Graph is not safe for concurrent use (the market arbiter
// serializes access).
type Graph struct {
	parents map[string][]string // dataset -> direct constituents (empty: base)
}

// NewGraph returns an empty provenance graph.
func NewGraph() *Graph {
	return &Graph{parents: make(map[string][]string)}
}

// AddBase registers a base (seller-uploaded) dataset.
func (g *Graph) AddBase(id string) error {
	if _, ok := g.parents[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	g.parents[id] = nil
	return nil
}

// AddDerived registers a derived dataset composed from the given
// constituents, all of which must already exist. Self-references and
// cycles are rejected.
func (g *Graph) AddDerived(id string, constituents ...string) error {
	if _, ok := g.parents[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	if len(constituents) == 0 {
		return errors.New("provenance: derived dataset needs constituents")
	}
	for _, c := range constituents {
		if c == id {
			return fmt.Errorf("%w: %s references itself", ErrCycle, id)
		}
		if _, ok := g.parents[c]; !ok {
			return fmt.Errorf("%w: constituent %s", ErrUnknown, c)
		}
	}
	// Since id is new and all constituents already exist, no constituent
	// can reach id, so no cycle is possible; the checks above are the
	// whole safety argument.
	cp := make([]string, len(constituents))
	copy(cp, constituents)
	g.parents[id] = cp
	return nil
}

// Contains reports whether id is registered.
func (g *Graph) Contains(id string) bool {
	_, ok := g.parents[id]
	return ok
}

// IsBase reports whether id is a base dataset. Unknown ids are not base.
func (g *Graph) IsBase(id string) bool {
	p, ok := g.parents[id]
	return ok && len(p) == 0
}

// Constituents returns the direct constituents of id (nil for base
// datasets) and whether id exists.
func (g *Graph) Constituents(id string) ([]string, bool) {
	p, ok := g.parents[id]
	if !ok {
		return nil, false
	}
	out := make([]string, len(p))
	copy(out, p)
	return out, true
}

// Leaves resolves id to the distinct base datasets backing it, sorted for
// determinism. A base dataset resolves to itself.
func (g *Graph) Leaves(id string) ([]string, error) {
	if _, ok := g.parents[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	seen := make(map[string]bool)
	var leaves []string
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		ps := g.parents[n]
		if len(ps) == 0 {
			leaves = append(leaves, n)
			return
		}
		for _, p := range ps {
			walk(p)
		}
	}
	walk(id)
	sort.Strings(leaves)
	return leaves, nil
}

// Shares returns each base dataset's revenue share of a sale of id: an
// equal split across the distinct base datasets backing it. (The paper
// delegates finer-grained revenue allocation, e.g. Shapley-value splits,
// to the related work it cites; an equal split keeps the ledger exact.)
func (g *Graph) Shares(id string) (map[string]float64, error) {
	leaves, err := g.Leaves(id)
	if err != nil {
		return nil, err
	}
	share := 1 / float64(len(leaves))
	out := make(map[string]float64, len(leaves))
	for _, l := range leaves {
		out[l] = share
	}
	return out, nil
}

// Dependents returns every registered dataset whose leaf set includes
// base (including base itself if registered as base), sorted. It answers
// "which products does this seller's dataset participate in?".
func (g *Graph) Dependents(base string) ([]string, error) {
	if _, ok := g.parents[base]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, base)
	}
	var out []string
	for id := range g.parents {
		leaves, err := g.Leaves(id)
		if err != nil {
			return nil, err
		}
		for _, l := range leaves {
			if l == base {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of registered datasets.
func (g *Graph) Len() int { return len(g.parents) }

// Remove deletes a dataset from the graph. It refuses to remove a
// dataset that other datasets still build on (the dependents must be
// removed first).
func (g *Graph) Remove(id string) error {
	if _, ok := g.parents[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	for other, ps := range g.parents {
		for _, p := range ps {
			if p == id {
				return fmt.Errorf("provenance: %s is a constituent of %s", id, other)
			}
		}
	}
	delete(g.parents, id)
	return nil
}

// Snapshot returns a deep copy of the derivation map (dataset -> direct
// constituents; empty for base datasets) for serialization.
func (g *Graph) Snapshot() map[string][]string {
	out := make(map[string][]string, len(g.parents))
	for id, ps := range g.parents {
		cp := make([]string, len(ps))
		copy(cp, ps)
		out[id] = cp
	}
	return out
}

// FromSnapshot reconstructs a graph from a derivation map, validating
// that every constituent exists and that the graph is acyclic.
func FromSnapshot(parents map[string][]string) (*Graph, error) {
	g := NewGraph()
	for id, ps := range parents {
		cp := make([]string, len(ps))
		copy(cp, ps)
		g.parents[id] = cp
	}
	// Validate references and acyclicity with an iterative three-color
	// DFS over every node.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.parents))
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("%w: via %s", ErrCycle, n)
		case black:
			return nil
		}
		color[n] = gray
		for _, p := range g.parents[n] {
			if _, ok := g.parents[p]; !ok {
				return fmt.Errorf("%w: constituent %s of %s", ErrUnknown, p, n)
			}
			if err := visit(p); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for id := range g.parents {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	return g, nil
}
