package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/wire"
)

// Follower defaults.
const (
	DefaultMaxLag     = 5 * time.Second
	DefaultBackoffMin = 50 * time.Millisecond
	DefaultBackoffMax = 2 * time.Second
)

// errDiverged marks a fatal replication failure: a replicated command
// the local market refused. The follower stops streaming — retrying
// would reapply history onto provably wrong state.
var errDiverged = errors.New("replica: follower diverged")

// Config configures a Follower.
type Config struct {
	// Dial opens a stream to the leader's wire listener. Required.
	// Production followers dial TCP; tests hand out net.Pipe ends.
	Dial func() (net.Conn, error)
	// Name labels log lines and errors (optional).
	Name string
	// MaxLag bounds staleness for readiness: a follower further behind
	// than this (by time) reports unready. Default DefaultMaxLag.
	MaxLag time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff after a lost
	// leader. Defaults DefaultBackoffMin/DefaultBackoffMax.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// BufSize is the wire connection buffer size (0 = default).
	BufSize int
	// Telemetry, when set, registers the shield_replica_* gauge
	// families on its registry. Each follower needs its own registry
	// (families refuse double registration by design).
	Telemetry *obs.Telemetry
}

// Follower replicates a leader's market: it dials, subscribes from its
// last applied sequence number, restores a snapshot when the leader
// sends one, applies every record through the same deterministic
// command core, and reconnects with exponential backoff when the
// stream drops. All read views are served from the local market;
// Staleness and Ready surface how far behind the leader they are.
type Follower struct {
	cfg Config

	mu          sync.Mutex
	m           *market.Market // nil until the first snapshot lands
	applied     int64          // newest applied journal seq
	leader      int64          // newest leader seq seen (records + heartbeats)
	lastAdvance time.Time      // last time applied advanced or was proven current
	connected   bool
	nc          net.Conn // current transport, for Kill/Close interrupts
	diverged    error    // sticky fatal apply failure
	closed      bool

	// Test hooks (the mutation canaries): dropSeq makes the follower
	// acknowledge one seq without applying it — the snapshot
	// differential must catch the divergence; stalled freezes the apply
	// loop so the lag gate must trip.
	dropSeq int64
	stalled bool

	stop chan struct{}
	done chan struct{}
}

// Start launches a follower replicating through cfg.Dial. It returns
// immediately; catch-up happens on the follower's own goroutine and
// Ready reports unready until the first catch-up completes.
func Start(cfg Config) (*Follower, error) {
	if cfg.Dial == nil {
		return nil, errors.New("replica: Config.Dial is required")
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = DefaultBackoffMin
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = DefaultBackoffMax
	}
	f := &Follower{
		cfg:         cfg,
		lastAdvance: time.Now(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		f.register(cfg.Telemetry.Registry)
	}
	go f.run()
	return f, nil
}

// run is the follower's lifecycle: stream until the connection drops,
// back off, redial — forever, until Close or divergence.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.BackoffMin
	for {
		err := f.stream()
		if f.isClosed() || errors.Is(err, errDiverged) {
			return
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.BackoffMax {
			backoff = f.cfg.BackoffMax
		}
	}
}

// stream runs one connection's lifetime: dial, subscribe from the
// current applied seq, install a snapshot if the leader sent one, then
// apply records until the stream ends.
func (f *Follower) stream() error {
	nc, err := f.cfg.Dial()
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		nc.Close()
		return errors.New("replica: closed")
	}
	f.nc = nc
	after := f.applied
	f.mu.Unlock()
	defer func() {
		nc.Close()
		f.mu.Lock()
		f.connected = false
		if f.nc == nc {
			f.nc = nil
		}
		f.mu.Unlock()
	}()

	conn, err := wire.NewConnSize(nc, f.cfg.BufSize)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	st, err := conn.OpenReplication(ctx, after)
	cancel()
	if err != nil {
		return err
	}

	if st.Snapshot != nil {
		var snap market.Snapshot
		if err := json.Unmarshal(st.Snapshot, &snap); err != nil {
			return fmt.Errorf("replica: decoding leader snapshot: %w", err)
		}
		m, err := market.RestoreSnapshot(snap)
		if err != nil {
			return fmt.Errorf("replica: restoring leader snapshot: %w", err)
		}
		f.mu.Lock()
		f.m = m
		f.applied = st.StartSeq
		if st.StartSeq > f.leader {
			f.leader = st.StartSeq
		}
		f.lastAdvance = time.Now()
		f.connected = true
		f.mu.Unlock()
	} else {
		f.mu.Lock()
		hasState := f.m != nil
		if st.StartSeq > f.leader {
			f.leader = st.StartSeq
		}
		f.connected = true
		f.mu.Unlock()
		if !hasState {
			return errors.New("replica: leader offered tail catch-up to a stateless follower")
		}
		if st.StartSeq != after {
			return fmt.Errorf("replica: tail catch-up from seq %d, subscribed at %d", st.StartSeq, after)
		}
	}

	for {
		fr, err := st.Next(context.Background())
		if err != nil {
			return err
		}
		if fr.Heartbeat {
			f.observeLeader(fr.Seq)
			continue
		}
		if err := f.applyRecord(fr); err != nil {
			return err
		}
	}
}

// applyRecord applies one replicated command. An apply failure is
// divergence — sticky and fatal, surfaced through Ready.
func (f *Follower) applyRecord(fr wire.RepFrame) error {
	// The stall canary: freeze here (applied stops advancing, lag
	// grows) until released or closed.
	for f.isStalled() {
		if f.isClosed() {
			return errors.New("replica: closed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	f.mu.Lock()
	m := f.m
	drop := f.dropSeq == fr.Seq
	if drop {
		f.dropSeq = 0
	}
	f.mu.Unlock()

	if !drop {
		if _, err := m.Apply(fr.Cmd); err != nil {
			f.mu.Lock()
			f.diverged = fmt.Errorf("%w: seq %d (%s): %v", errDiverged, fr.Seq, fr.Cmd.Op(), err)
			err = f.diverged
			f.mu.Unlock()
			return err
		}
	}

	f.mu.Lock()
	f.applied = fr.Seq
	if fr.Seq > f.leader {
		f.leader = fr.Seq
	}
	f.lastAdvance = time.Now()
	f.mu.Unlock()
	return nil
}

// observeLeader folds a heartbeat's leader seq into the staleness
// bookkeeping. A heartbeat proving the follower current refreshes
// lastAdvance: "no news" is only staleness when there is news.
func (f *Follower) observeLeader(seq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq > f.leader {
		f.leader = seq
	}
	if f.applied >= f.leader {
		f.lastAdvance = time.Now()
	}
}

// Market returns the follower's local market for read views — nil
// until the first snapshot catch-up completes.
func (f *Follower) Market() *market.Market {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m
}

// Applied returns the newest journal sequence number the follower has
// applied.
func (f *Follower) Applied() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Staleness reports the follower's replication position: applied and
// leader sequence numbers, lag in seconds, and whether a stream is
// currently established. Lag is the time since the follower last
// proved itself current — it advanced past a record, or a heartbeat
// confirmed applied >= leader. On a healthy stream it oscillates
// between 0 and the leader's heartbeat interval; on a stalled,
// disconnected, or diverged follower it grows without bound until the
// next catch-up. Deliberately, the follower's own belief about the
// leader's seq is not trusted for currency: a consumer that stopped
// reading the stream also stopped learning how far behind it is.
func (f *Follower) Staleness() (applied, leader int64, lagSeconds float64, connected bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied, f.leader, time.Since(f.lastAdvance).Seconds(), f.connected
}

// Ready implements the readiness contract (/readyz on a replica):
// non-nil while the follower has no state yet, has diverged, or is
// staler than Config.MaxLag.
func (f *Follower) Ready() error {
	f.mu.Lock()
	diverged := f.diverged
	hasState := f.m != nil
	f.mu.Unlock()
	if diverged != nil {
		return diverged
	}
	if !hasState {
		return errors.New("replica: no state yet (first catch-up pending)")
	}
	if _, _, lag, _ := f.Staleness(); lag > f.cfg.MaxLag.Seconds() {
		return fmt.Errorf("replica: lag %.2fs exceeds bound %s", lag, f.cfg.MaxLag)
	}
	return nil
}

// Kill drops the follower's current connection, simulating a leader
// restart or network fault; the run loop redials with backoff and
// catches up from its applied seq (the torture harness's mid-stream
// kill). State is retained — use a fresh Start for a cold restart.
func (f *Follower) Kill() {
	f.mu.Lock()
	nc := f.nc
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// Close permanently stops the follower and waits for its goroutine to
// exit. The local market, if any, stays readable.
func (f *Follower) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.closed = true
	nc := f.nc
	f.mu.Unlock()
	close(f.stop)
	if nc != nil {
		nc.Close()
	}
	<-f.done
}

func (f *Follower) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *Follower) isStalled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalled
}

// TestDropSeq makes the follower acknowledge seq without applying it —
// the replication mutation canary. The snapshot differential must
// catch the resulting divergence; nothing else will, by design.
func (f *Follower) TestDropSeq(seq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropSeq = seq
}

// TestStall freezes the apply loop (the lag-gate canary); TestResume
// releases it.
func (f *Follower) TestStall() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalled = true
}

// TestResume releases a TestStall freeze.
func (f *Follower) TestResume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalled = false
}

// register exposes the follower's replication position as scrape-time
// gauges: applied/leader seq, lag in records and seconds, and stream
// connectedness.
func (f *Follower) register(r *obs.Registry) {
	r.Collect("shield_replica_applied_seq",
		"Newest journal sequence number this replica has applied.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			applied, _, _, _ := f.Staleness()
			emit(float64(applied))
		})
	r.Collect("shield_replica_leader_seq",
		"Newest leader sequence number this replica has observed.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, leader, _, _ := f.Staleness()
			emit(float64(leader))
		})
	r.Collect("shield_replica_lag_records",
		"Records the replica is behind the leader (observed leader seq minus applied seq).",
		obs.KindGauge, func(emit func(float64, ...string)) {
			applied, leader, _, _ := f.Staleness()
			lag := leader - applied
			if lag < 0 {
				lag = 0
			}
			emit(float64(lag))
		})
	r.Collect("shield_replica_lag_seconds",
		"Replication staleness: 0 while connected and current, else time since the replica last advanced.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, _, lag, _ := f.Staleness()
			emit(lag)
		})
	r.Collect("shield_replica_connected",
		"Whether a replication stream to the leader is established (1) or down (0).",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, _, _, connected := f.Staleness()
			if connected {
				emit(1)
			} else {
				emit(0)
			}
		})
}
