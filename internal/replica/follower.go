package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/obs"
	"github.com/datamarket/shield/internal/wire"
)

// Follower defaults.
const (
	DefaultMaxLag     = 5 * time.Second
	DefaultBackoffMin = 50 * time.Millisecond
	DefaultBackoffMax = 2 * time.Second
)

// errDiverged marks a fatal replication failure: a replicated command
// the local market refused. The follower stops streaming — retrying
// would reapply history onto provably wrong state.
var errDiverged = errors.New("replica: follower diverged")

// Config configures a Follower.
type Config struct {
	// Dial opens a stream to the leader's wire listener. Required.
	// Production followers dial TCP; tests hand out net.Pipe ends.
	Dial func() (net.Conn, error)
	// Name labels log lines and errors (optional).
	Name string
	// MaxLag bounds staleness for readiness: a follower further behind
	// than this (by time) reports unready. Default DefaultMaxLag.
	MaxLag time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff after a lost
	// leader. Defaults DefaultBackoffMin/DefaultBackoffMax.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// BufSize is the wire connection buffer size (0 = default).
	BufSize int
	// Dir, when set, gives the follower a local segmented store: every
	// applied record is persisted there (snapshot catch-ups reseed it),
	// so a cold restart recovers the market from local disk and rejoins
	// the stream at its own durable seq instead of re-downloading a
	// snapshot. Empty means in-memory only, the pre-store behaviour.
	Dir string
	// Store tunes the local store when Dir is set (zero values take the
	// journal package defaults).
	Store journal.StoreConfig
	// Telemetry, when set, registers the shield_replica_* gauge
	// families on its registry. Each follower needs its own registry
	// (families refuse double registration by design).
	Telemetry *obs.Telemetry
}

// Follower replicates a leader's market: it dials, subscribes from its
// last applied sequence number, restores a snapshot when the leader
// sends one, applies every record through the same deterministic
// command core, and reconnects with exponential backoff when the
// stream drops. All read views are served from the local market;
// Staleness and Ready surface how far behind the leader they are.
type Follower struct {
	cfg Config

	mu          sync.Mutex
	m           *market.Market // nil until the first snapshot lands
	applied     int64          // newest applied journal seq
	leader      int64          // newest leader seq seen (records + heartbeats)
	lastAdvance time.Time      // last time applied advanced or was proven current
	connected   bool
	nc          net.Conn // current transport, for Kill/Close interrupts
	diverged    error    // sticky fatal apply failure
	closed      bool

	// rs is the local segmented store when Config.Dir is set. A
	// persistence failure is sticky (persistErr): the follower keeps
	// serving and replicating in memory, but stops appending — a
	// half-written local chain must not masquerade as durable.
	rs         *journal.ReplicaStore
	persistErr error

	// Test hooks (the mutation canaries): dropSeq makes the follower
	// acknowledge one seq without applying it — the snapshot
	// differential must catch the divergence; stalled freezes the apply
	// loop so the lag gate must trip.
	dropSeq int64
	stalled bool

	stop chan struct{}
	done chan struct{}
}

// Start launches a follower replicating through cfg.Dial. It returns
// immediately; catch-up happens on the follower's own goroutine and
// Ready reports unready until the first catch-up completes.
func Start(cfg Config) (*Follower, error) {
	if cfg.Dial == nil {
		return nil, errors.New("replica: Config.Dial is required")
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = DefaultBackoffMin
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = DefaultBackoffMax
	}
	f := &Follower{
		cfg:         cfg,
		lastAdvance: time.Now(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.Dir != "" {
		rs, m, lastSeq, err := journal.OpenReplicaStore(cfg.Dir, cfg.Store)
		if err != nil {
			return nil, fmt.Errorf("replica: opening local store %s: %w", cfg.Dir, err)
		}
		f.rs = rs
		if m != nil {
			// Cold restart: serve the locally recovered state right away
			// and rejoin the stream from the local durable seq.
			f.m = m
			f.applied = lastSeq
			f.leader = lastSeq
		}
	}
	if cfg.Telemetry != nil {
		f.register(cfg.Telemetry.Registry)
	}
	go f.run()
	return f, nil
}

// run is the follower's lifecycle: stream until the connection drops,
// back off, redial — forever, until Close or divergence.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.BackoffMin
	for {
		err := f.stream()
		if f.isClosed() || errors.Is(err, errDiverged) {
			return
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.BackoffMax {
			backoff = f.cfg.BackoffMax
		}
	}
}

// stream runs one connection's lifetime: dial, subscribe from the
// current applied seq, install a snapshot if the leader sent one, then
// apply records until the stream ends.
func (f *Follower) stream() error {
	nc, err := f.cfg.Dial()
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		nc.Close()
		return errors.New("replica: closed")
	}
	f.nc = nc
	after := f.applied
	f.mu.Unlock()
	defer func() {
		nc.Close()
		f.mu.Lock()
		f.connected = false
		if f.nc == nc {
			f.nc = nil
		}
		f.mu.Unlock()
	}()

	conn, err := wire.NewConnSize(nc, f.cfg.BufSize)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	st, err := conn.OpenReplication(ctx, after)
	cancel()
	if err != nil {
		return err
	}

	if st.Snapshot != nil {
		var snap market.Snapshot
		if err := json.Unmarshal(st.Snapshot, &snap); err != nil {
			return fmt.Errorf("replica: decoding leader snapshot: %w", err)
		}
		m, err := f.reseed(snap, st.StartSeq)
		if err != nil {
			return fmt.Errorf("replica: restoring leader snapshot: %w", err)
		}
		f.mu.Lock()
		f.m = m
		f.applied = st.StartSeq
		if st.StartSeq > f.leader {
			f.leader = st.StartSeq
		}
		f.lastAdvance = time.Now()
		f.connected = true
		f.mu.Unlock()
	} else {
		f.mu.Lock()
		hasState := f.m != nil
		if st.StartSeq > f.leader {
			f.leader = st.StartSeq
		}
		f.connected = true
		f.mu.Unlock()
		if !hasState {
			return errors.New("replica: leader offered tail catch-up to a stateless follower")
		}
		if st.StartSeq != after {
			return fmt.Errorf("replica: tail catch-up from seq %d, subscribed at %d", st.StartSeq, after)
		}
	}

	for {
		fr, err := st.Next(context.Background())
		if err != nil {
			return err
		}
		if fr.Heartbeat {
			f.observeLeader(fr.Seq)
			continue
		}
		if err := f.applyRecord(fr); err != nil {
			return err
		}
	}
}

// reseed builds the follower's market from a leader snapshot. With a
// local store it runs through ReplicaStore.Reset, which wipes the old
// chain and lands the snapshot as a durable checkpoint; a store
// failure falls back to a purely in-memory restore with the sticky
// persistErr recording why local durability is gone.
func (f *Follower) reseed(snap market.Snapshot, seq int64) (*market.Market, error) {
	f.mu.Lock()
	rs := f.rs
	broken := f.persistErr != nil
	f.mu.Unlock()
	if rs != nil && !broken {
		m, err := rs.Reset(snap, seq)
		if err == nil {
			return m, nil
		}
		f.mu.Lock()
		f.persistErr = fmt.Errorf("replica: local store reseed: %w", err)
		f.mu.Unlock()
	}
	return market.RestoreSnapshot(snap)
}

// persist appends one applied record to the local store, if one is
// attached and still healthy. Failures are sticky but non-fatal: the
// follower keeps serving from memory.
func (f *Follower) persist(fr wire.RepFrame) {
	f.mu.Lock()
	rs := f.rs
	broken := f.persistErr != nil
	f.mu.Unlock()
	if rs == nil || broken {
		return
	}
	e, err := journal.EventFromCommand(fr.Cmd)
	if err == nil {
		e.Seq = fr.Seq
		err = rs.Append(e)
	}
	if err != nil {
		f.mu.Lock()
		if f.persistErr == nil {
			f.persistErr = fmt.Errorf("replica: local store append seq %d: %w", fr.Seq, err)
		}
		f.mu.Unlock()
	}
}

// applyRecord applies one replicated command. An apply failure is
// divergence — sticky and fatal, surfaced through Ready.
func (f *Follower) applyRecord(fr wire.RepFrame) error {
	// The stall canary: freeze here (applied stops advancing, lag
	// grows) until released or closed.
	for f.isStalled() {
		if f.isClosed() {
			return errors.New("replica: closed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	f.mu.Lock()
	m := f.m
	drop := f.dropSeq == fr.Seq
	if drop {
		f.dropSeq = 0
	}
	f.mu.Unlock()

	if !drop {
		if _, err := m.Apply(fr.Cmd); err != nil {
			f.mu.Lock()
			f.diverged = fmt.Errorf("%w: seq %d (%s): %v", errDiverged, fr.Seq, fr.Cmd.Op(), err)
			err = f.diverged
			f.mu.Unlock()
			return err
		}
	}
	// Persist even a canary-dropped record: the local chain mirrors the
	// leader's log, not the (possibly sabotaged) serving state, and a
	// skipped seq would break chain contiguity for every later append.
	f.persist(fr)

	f.mu.Lock()
	f.applied = fr.Seq
	if fr.Seq > f.leader {
		f.leader = fr.Seq
	}
	f.lastAdvance = time.Now()
	f.mu.Unlock()
	return nil
}

// observeLeader folds a heartbeat's leader seq into the staleness
// bookkeeping. A heartbeat proving the follower current refreshes
// lastAdvance: "no news" is only staleness when there is news.
func (f *Follower) observeLeader(seq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq > f.leader {
		f.leader = seq
	}
	if f.applied >= f.leader {
		f.lastAdvance = time.Now()
	}
}

// Market returns the follower's local market for read views — nil
// until the first snapshot catch-up completes.
func (f *Follower) Market() *market.Market {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m
}

// Applied returns the newest journal sequence number the follower has
// applied.
func (f *Follower) Applied() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Staleness reports the follower's replication position: applied and
// leader sequence numbers, lag in seconds, and whether a stream is
// currently established. Lag is the time since the follower last
// proved itself current — it advanced past a record, or a heartbeat
// confirmed applied >= leader. On a healthy stream it oscillates
// between 0 and the leader's heartbeat interval; on a stalled,
// disconnected, or diverged follower it grows without bound until the
// next catch-up. Deliberately, the follower's own belief about the
// leader's seq is not trusted for currency: a consumer that stopped
// reading the stream also stopped learning how far behind it is.
func (f *Follower) Staleness() (applied, leader int64, lagSeconds float64, connected bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied, f.leader, time.Since(f.lastAdvance).Seconds(), f.connected
}

// Ready implements the readiness contract (/readyz on a replica):
// non-nil while the follower has no state yet, has diverged, or is
// staler than Config.MaxLag.
func (f *Follower) Ready() error {
	f.mu.Lock()
	diverged := f.diverged
	hasState := f.m != nil
	f.mu.Unlock()
	if diverged != nil {
		return diverged
	}
	if !hasState {
		return errors.New("replica: no state yet (first catch-up pending)")
	}
	if _, _, lag, _ := f.Staleness(); lag > f.cfg.MaxLag.Seconds() {
		return fmt.Errorf("replica: lag %.2fs exceeds bound %s", lag, f.cfg.MaxLag)
	}
	return nil
}

// PersistErr reports the sticky local-store failure, nil while local
// persistence (if configured) is healthy. A failed store does not
// unready the follower — it keeps serving from memory — but operators
// see the fault here and through the store's own Err.
func (f *Follower) PersistErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.persistErr != nil {
		return f.persistErr
	}
	if f.rs != nil {
		return f.rs.Err()
	}
	return nil
}

// LocalStore returns the follower's local segmented store (nil when
// Config.Dir was empty), for inventory reporting.
func (f *Follower) LocalStore() *journal.ReplicaStore {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rs
}

// Kill drops the follower's current connection, simulating a leader
// restart or network fault; the run loop redials with backoff and
// catches up from its applied seq (the torture harness's mid-stream
// kill). State is retained — use a fresh Start for a cold restart.
func (f *Follower) Kill() {
	f.mu.Lock()
	nc := f.nc
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// Close permanently stops the follower and waits for its goroutine to
// exit. The local market, if any, stays readable.
func (f *Follower) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.closed = true
	nc := f.nc
	f.mu.Unlock()
	close(f.stop)
	if nc != nil {
		nc.Close()
	}
	<-f.done
	if f.rs != nil {
		f.rs.Close()
	}
}

func (f *Follower) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *Follower) isStalled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalled
}

// TestDropSeq makes the follower acknowledge seq without applying it —
// the replication mutation canary. The snapshot differential must
// catch the resulting divergence; nothing else will, by design.
func (f *Follower) TestDropSeq(seq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropSeq = seq
}

// TestStall freezes the apply loop (the lag-gate canary); TestResume
// releases it.
func (f *Follower) TestStall() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalled = true
}

// TestResume releases a TestStall freeze.
func (f *Follower) TestResume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalled = false
}

// register exposes the follower's replication position as scrape-time
// gauges: applied/leader seq, lag in records and seconds, and stream
// connectedness.
func (f *Follower) register(r *obs.Registry) {
	r.Collect("shield_replica_applied_seq",
		"Newest journal sequence number this replica has applied.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			applied, _, _, _ := f.Staleness()
			emit(float64(applied))
		})
	r.Collect("shield_replica_leader_seq",
		"Newest leader sequence number this replica has observed.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, leader, _, _ := f.Staleness()
			emit(float64(leader))
		})
	r.Collect("shield_replica_lag_records",
		"Records the replica is behind the leader (observed leader seq minus applied seq).",
		obs.KindGauge, func(emit func(float64, ...string)) {
			applied, leader, _, _ := f.Staleness()
			lag := leader - applied
			if lag < 0 {
				lag = 0
			}
			emit(float64(lag))
		})
	r.Collect("shield_replica_lag_seconds",
		"Replication staleness: 0 while connected and current, else time since the replica last advanced.",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, _, lag, _ := f.Staleness()
			emit(lag)
		})
	r.Collect("shield_replica_connected",
		"Whether a replication stream to the leader is established (1) or down (0).",
		obs.KindGauge, func(emit func(float64, ...string)) {
			_, _, _, connected := f.Staleness()
			if connected {
				emit(1)
			} else {
				emit(0)
			}
		})
}
