// Package replica implements leader/follower replication over the
// journal's command log: a Feed on the leader observes every durably
// committed record through the journal's commit hook and fans it out to
// wire replication subscribers, and a Follower dials the leader,
// catches up from a snapshot or the log tail, applies the identical
// deterministic command core, and serves the market's lock-free read
// views locally while tracking its staleness against the leader.
//
// The correctness contract is the command core's: the same command
// sequence yields byte-identical canonical snapshots, so a follower
// that has applied through seq N is provably in the leader's state at
// seq N. Everything here reduces to delivering records in strict
// sequence order exactly once — the wire layer rejects anything else.
package replica

import (
	"errors"
	"fmt"
	"sync"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/wire"
)

// DefaultRingSize is how many recent records a Feed retains for tail
// catch-up. A reconnecting follower whose gap fits the ring streams
// just the missed records; a larger gap gets a snapshot instead.
const DefaultRingSize = 4096

// subSlack is the subscriber channel capacity beyond any preloaded
// tail: the headroom a live subscriber has to absorb a commit burst
// before the feed drops it as too slow.
const subSlack = 1024

// ErrFollowerAhead reports a subscriber claiming more history than the
// leader has — a diverged follower or one talking to the wrong leader.
var ErrFollowerAhead = errors.New("replica: follower ahead of leader")

// Feed is the leader-side replication source (wire.ReplicationSource).
//
// On a flat-file journal it maintains a shadow market advanced only by
// the journal's commit hook, so its (snapshot, seq) pairs are exactly
// aligned — the live market applies commands before journaling them,
// so snapshotting the live market directly could capture state ahead
// of the log. On a segmented store the shadow is dropped entirely: the
// store already keeps a checkpoint-aligned shadow, snapshot catch-up
// is served from the newest checkpoint file, and the records between
// that checkpoint and the feed's head are preloaded from the segment
// tail on disk.
//
// Attach a Feed with NewFeed after building the journaled market and
// before serving traffic: records committed while no hook is installed
// are not replayable to subscribers.
type Feed struct {
	mu      sync.Mutex
	shadow  *market.Market // nil when store-backed
	store   *journal.Store // nil on a flat-file journal
	lastSeq int64

	ring     []wire.RepRecord
	ringBase int64 // seq of ring[0] when the ring is non-empty
	ringMax  int

	// subs maps each subscriber channel to its floor seq: records at or
	// below the floor are not fanned out to that subscriber (they are
	// already inside its catch-up snapshot or preloaded tail).
	subs map[chan wire.RepRecord]int64
	err  error // sticky feed failure (a record the shadow could not apply)
}

// NewFeed builds a feed over jm and installs it as the journal's
// commit hook. ringMax bounds the tail-catch-up ring (0 means
// DefaultRingSize). Must be called before jm serves traffic.
func NewFeed(jm *journal.Market, ringMax int) (*Feed, error) {
	if ringMax <= 0 {
		ringMax = DefaultRingSize
	}
	f := &Feed{
		store:    jm.Store(),
		lastSeq:  jm.LastSeq(),
		ringMax:  ringMax,
		subs:     make(map[chan wire.RepRecord]int64),
		ringBase: jm.LastSeq() + 1,
	}
	if f.store == nil {
		shadow, err := market.RestoreSnapshot(jm.Snapshot())
		if err != nil {
			return nil, fmt.Errorf("replica: building shadow market: %w", err)
		}
		f.shadow = shadow
	}
	jm.OnCommit(f.commit)
	return f, nil
}

// commit is the journal's commit hook: one durably committed record,
// in strict sequence order. It advances the shadow market, retains the
// encoded record frame in the ring, and fans it out to subscribers —
// dropping (closing) any subscriber whose channel is full, because a
// blocked send here would stall the leader's append path.
func (f *Feed) commit(e journal.Event) {
	cmd, err := journal.CommandFromEvent(e)
	var enc []byte
	if err == nil {
		enc, err = command.EncodeBinary(cmd)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return
	}
	if err == nil && e.Seq != f.lastSeq+1 {
		err = fmt.Errorf("replica: commit hook saw seq %d, want %d", e.Seq, f.lastSeq+1)
	}
	if err == nil && f.shadow != nil {
		// The journal only records operations that succeeded on the live
		// market, and Apply is deterministic, so this cannot fail unless
		// the shadow has diverged — which poisons the feed. Store-backed
		// feeds skip this: the store keeps its own checkpoint shadow.
		_, err = f.shadow.Apply(cmd)
	}
	if err != nil {
		f.err = fmt.Errorf("replica: feed poisoned at seq %d (%s): %w", e.Seq, e.Op, err)
		for ch := range f.subs {
			close(ch)
			delete(f.subs, ch)
		}
		return
	}
	f.lastSeq = e.Seq

	rec := wire.RepRecord{Seq: e.Seq, Payload: wire.AppendRecordFrame(nil, e.Seq, enc)}
	f.ring = append(f.ring, rec)
	if len(f.ring) >= 2*f.ringMax {
		// Amortized trim: keep the newest ringMax records.
		n := copy(f.ring, f.ring[len(f.ring)-f.ringMax:])
		f.ring = f.ring[:n]
		f.ringBase = f.ring[0].Seq
	}
	for ch, floor := range f.subs {
		if rec.Seq <= floor {
			continue
		}
		select {
		case ch <- rec:
		default:
			// Too slow to keep a live stream; the wire server sees the
			// close, drops the connection, and the follower resubscribes
			// with a snapshot or tail catch-up.
			close(ch)
			delete(f.subs, ch)
		}
	}
}

// Subscribe implements wire.ReplicationSource: it attaches a consumer
// that has applied through afterSeq. A gap that fits the ring is
// served as a tail (the missed records are preloaded onto the
// channel); anything older gets the shadow market's canonical snapshot
// at the feed's current seq.
func (f *Feed) Subscribe(afterSeq int64) (wire.Subscription, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return wire.Subscription{}, f.err
	}
	if afterSeq > f.lastSeq {
		return wire.Subscription{}, fmt.Errorf("%w: follower at seq %d, leader at %d", ErrFollowerAhead, afterSeq, f.lastSeq)
	}

	var sub wire.Subscription
	var pending []wire.RepRecord
	floor := f.lastSeq
	if afterSeq == f.lastSeq {
		sub.StartSeq = afterSeq
	} else if len(f.ring) > 0 && afterSeq+1 >= f.ringBase {
		sub.StartSeq = afterSeq
		pending = f.ring[afterSeq+1-f.ringBase:]
	} else if f.store != nil {
		// Segmented store: catch up from the newest durable checkpoint
		// file, then preload the segment-tail records between the
		// checkpoint and the feed's head. A background checkpoint can
		// land ahead of the commit hook, so the per-subscriber floor
		// (not the preload) keeps live fanout duplicate-free.
		snap, snapSeq, err := f.store.CatchupSnapshot()
		if err != nil {
			return wire.Subscription{}, fmt.Errorf("replica: checkpoint catch-up: %w", err)
		}
		sub.Snapshot = snap
		sub.StartSeq = snapSeq
		if snapSeq > floor {
			floor = snapSeq
		}
		err = f.store.TailEvents(snapSeq, f.lastSeq, func(e journal.Event) error {
			cmd, err := journal.CommandFromEvent(e)
			if err != nil {
				return err
			}
			enc, err := command.EncodeBinary(cmd)
			if err != nil {
				return err
			}
			pending = append(pending, wire.RepRecord{Seq: e.Seq, Payload: wire.AppendRecordFrame(nil, e.Seq, enc)})
			return nil
		})
		if err != nil {
			return wire.Subscription{}, fmt.Errorf("replica: reading segment tail: %w", err)
		}
	} else {
		// The gap predates the ring: snapshot catch-up. The shadow is at
		// exactly lastSeq — that alignment is the reason it exists.
		snap, err := f.shadow.Snapshot().Canonical()
		if err != nil {
			return wire.Subscription{}, fmt.Errorf("replica: encoding snapshot: %w", err)
		}
		sub.Snapshot = snap
		sub.StartSeq = f.lastSeq
	}

	ch := make(chan wire.RepRecord, len(pending)+subSlack)
	for _, rec := range pending {
		ch <- rec
	}
	f.subs[ch] = floor
	sub.Records = ch
	sub.Cancel = func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if _, ok := f.subs[ch]; ok {
			delete(f.subs, ch)
			close(ch)
		}
	}
	return sub, nil
}

// LeaderSeq implements wire.ReplicationSource: the newest committed
// sequence number, for stream heartbeats.
func (f *Feed) LeaderSeq() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSeq
}

// Healthy returns nil while the feed can serve subscribers, and the
// sticky poisoning error after a record failed to apply to the shadow.
func (f *Feed) Healthy() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Subscribers returns the number of attached replication consumers
// (diagnostics and tests).
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}
