package replica

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/wire"
)

func testConfig() market.Config {
	return market.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 4,
			MinBid:        1,
		},
		Seed: 7,
	}
}

// leaderRig is a journaled leader market with a replication feed and a
// wire server followers can dial over net.Pipe.
type leaderRig struct {
	jm   *journal.Market
	feed *Feed
	ws   *wire.Server
}

func newLeaderRig(t *testing.T, ringMax int, opts ...journal.Option) *leaderRig {
	t.Helper()
	path := filepath.Join(t.TempDir(), "leader.journal")
	jm, _, err := journal.OpenFile(testConfig(), path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jm.Close() })

	// Some pre-feed history, so followers must catch up from a snapshot
	// that is not just genesis.
	if err := jm.RegisterSeller("s1"); err != nil {
		t.Fatal(err)
	}
	if err := jm.UploadDataset("s1", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBuyer("b0"); err != nil {
		t.Fatal(err)
	}

	feed, err := NewFeed(jm, ringMax)
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.NewServer(jm).WithReplication(feed).WithHeartbeatInterval(10 * time.Millisecond)
	return &leaderRig{jm: jm, feed: feed, ws: ws}
}

// dial hands a follower one net.Pipe end, serving the other.
func (r *leaderRig) dial() (net.Conn, error) {
	srv, cli := net.Pipe()
	go func() { _ = r.ws.ServeConn(srv) }()
	return cli, nil
}

// churn drives n mutating ops through the leader.
func (r *leaderRig) churn(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		buyer := market.BuyerID(fmt.Sprintf("b%d", i%3))
		if _, err := r.jm.SubmitBid(buyer, "d1", float64(20+i%50)); err != nil {
			// Shield rejections (wait periods) are fine; journal errors
			// are not.
			var wantNil error
			if errors.Is(err, journal.ErrClosed) {
				t.Fatalf("bid %d: %v", i, err)
			}
			_ = wantNil
		}
		if i%10 == 9 {
			if _, err := r.jm.Tick(); err != nil {
				t.Fatalf("tick %d: %v", i, err)
			}
		}
	}
}

// waitConverged blocks until the follower has applied the leader's
// newest seq, or fails the test.
func waitConverged(t *testing.T, f *Follower, feed *Feed, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		want := feed.LeaderSeq()
		if got := f.Applied(); got >= want {
			return
		}
		if time.Now().After(deadline) {
			applied, leader, lag, connected := f.Staleness()
			t.Fatalf("follower stuck: applied %d, leader %d (feed %d), lag %.2fs, connected %v",
				applied, leader, want, lag, connected)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mustMatchLeader pins the follower's snapshot byte-identical to the
// leader's.
func mustMatchLeader(t *testing.T, r *leaderRig, f *Follower) {
	t.Helper()
	want, err := r.jm.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	fm := f.Market()
	if fm == nil {
		t.Fatal("follower has no market")
	}
	got, err := fm.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("follower snapshot diverges from leader:\nleader: %d bytes\nfollower: %d bytes", len(want), len(got))
	}
}

func TestFollowerSnapshotCatchUpThenStream(t *testing.T) {
	r := newLeaderRig(t, 0)
	f, err := Start(Config{Dial: r.dial, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Catch-up from snapshot (fresh follower, history predates any ring).
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
	if err := f.Ready(); err != nil {
		t.Fatalf("converged follower unready: %v", err)
	}

	// Live streaming.
	r.churn(t, 200)
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)

	applied, leader, lag, connected := f.Staleness()
	if applied != leader || !connected {
		t.Fatalf("staleness after convergence: applied %d leader %d connected %v", applied, leader, connected)
	}
	if lag > 1.0 {
		t.Fatalf("lag %.2fs on a connected, current follower", lag)
	}
}

func TestFollowerKillReconnectsAndConverges(t *testing.T) {
	r := newLeaderRig(t, 0)
	f, err := Start(Config{Dial: r.dial, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, f, r.feed, 5*time.Second)

	// Kill mid-stream; the leader keeps committing while the follower
	// is down, so the reconnect must catch up (tail mode: the gap fits
	// the default ring).
	r.churn(t, 50)
	f.Kill()
	r.churn(t, 100)
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
}

func TestFollowerSnapshotCatchUpAfterRingEviction(t *testing.T) {
	// A tiny ring forces the reconnect gap past the tail window, so the
	// feed must serve a fresh snapshot to a non-empty follower.
	r := newLeaderRig(t, 8)
	f, err := Start(Config{Dial: r.dial, BackoffMin: 200 * time.Millisecond, BackoffMax: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, f, r.feed, 5*time.Second)

	f.Kill()
	r.churn(t, 200) // far beyond 2*8 ring records while the follower is down
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
}

func TestFollowerGroupCommitLeader(t *testing.T) {
	// The commit hook's ordering contract is subtler under group
	// commit; prove convergence there too.
	r := newLeaderRig(t, 0, journal.WithGroupCommit(0))
	f, err := Start(Config{Dial: r.dial, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		r.churn(t, 150)
	}()
	<-done
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
}

func TestFeedRefusesFollowerAhead(t *testing.T) {
	r := newLeaderRig(t, 0)
	_, err := r.feed.Subscribe(r.feed.LeaderSeq() + 10)
	if !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("got %v, want ErrFollowerAhead", err)
	}
}

func TestFollowerDropCanaryDiverges(t *testing.T) {
	// The mutation canary's mechanism: a follower that skips one
	// replicated command must produce a snapshot that is NOT
	// byte-identical to the leader's, even though its seq converges.
	r := newLeaderRig(t, 0)
	f, err := Start(Config{Dial: r.dial, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, f, r.feed, 5*time.Second)

	f.TestDropSeq(r.feed.LeaderSeq() + 1)
	r.churn(t, 50)
	waitConverged(t, f, r.feed, 5*time.Second)

	want, err := r.jm.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Market().Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(want) {
		t.Fatal("dropped command left the snapshot byte-identical; the differential cannot catch skips")
	}
}

func TestFollowerStallTripsReadiness(t *testing.T) {
	r := newLeaderRig(t, 0)
	f, err := Start(Config{
		Dial:       r.dial,
		MaxLag:     30 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, f, r.feed, 5*time.Second)

	f.TestStall()
	r.churn(t, 20)
	deadline := time.Now().Add(5 * time.Second)
	for f.Ready() == nil {
		if time.Now().After(deadline) {
			t.Fatal("stalled follower never turned unready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.TestResume()
	waitConverged(t, f, r.feed, 5*time.Second)
	if err := f.Ready(); err != nil {
		t.Fatalf("resumed follower unready: %v", err)
	}
}
