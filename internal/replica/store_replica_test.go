package replica

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/wire"
)

// newStoreLeaderRig is newLeaderRig over a segmented store: aggressive
// rotation and checkpointing so catch-up exercises the checkpoint file
// and segment-tail paths rather than the in-memory ring.
func newStoreLeaderRig(t *testing.T, ringMax int, opts ...journal.Option) *leaderRig {
	t.Helper()
	sc := journal.StoreConfig{SegmentRecords: 16, CheckpointEvery: 24}
	jm, _, err := journal.OpenStore(testConfig(), t.TempDir(), sc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jm.Close() })
	if err := jm.RegisterSeller("s1"); err != nil {
		t.Fatal(err)
	}
	if err := jm.UploadDataset("s1", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBuyer("b0"); err != nil {
		t.Fatal(err)
	}
	feed, err := NewFeed(jm, ringMax)
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.NewServer(jm).WithReplication(feed).WithHeartbeatInterval(10 * time.Millisecond)
	return &leaderRig{jm: jm, feed: feed, ws: ws}
}

// appendChurn drives n guaranteed-append records (unique buyer
// registrations) — churn's bids are mostly shield-rejected and never
// reach the journal, which is no good for filling segments.
func appendChurn(t *testing.T, r *leaderRig, tag string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.jm.RegisterBuyer(market.BuyerID(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreLeaderCheckpointCatchUp: on a store-backed leader a fresh
// follower's snapshot catch-up is served from the newest checkpoint
// file plus the segment tail, and still converges byte-identically.
func TestStoreLeaderCheckpointCatchUp(t *testing.T) {
	r := newStoreLeaderRig(t, 8)
	// Enough history for several rotations and checkpoints, and far more
	// records than the tiny ring retains.
	appendChurn(t, r, "cua", 80)
	appendChurn(t, r, "pb", 40)
	// Checkpoints land asynchronously; wait for one.
	for deadline := time.Now().Add(5 * time.Second); r.jm.Store().LastCheckpoint() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("leader store produced no checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}

	f, err := Start(Config{Dial: r.dial, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)

	// Live streaming after catch-up.
	appendChurn(t, r, "cub", 30)
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
}

// TestFollowerPersistentColdRestart: a follower with a local store
// directory persists every applied record; a cold restart recovers the
// market and its position from local disk — no leader snapshot needed
// — and rejoins the stream from its own durable seq.
func TestFollowerPersistentColdRestart(t *testing.T) {
	r := newStoreLeaderRig(t, 0)
	dir := t.TempDir()
	sc := journal.StoreConfig{SegmentRecords: 16, CheckpointEvery: 24}

	f, err := Start(Config{
		Dial: r.dial, Dir: dir, Store: sc,
		BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f, r.feed, 5*time.Second)
	appendChurn(t, r, "pa", 60)
	r.churn(t, 20)
	waitConverged(t, f, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f)
	if err := f.PersistErr(); err != nil {
		t.Fatalf("local persistence failed: %v", err)
	}
	appliedBefore := f.Applied()
	f.Close()

	inv, err := journal.InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Close checkpointed the final applied seq, and compaction then
	// deleted every covered sealed segment — the local footprint is the
	// checkpoint plus the active segment, not the full record history.
	if inv.LastSeq != appliedBefore || inv.LastCheckpoint != appliedBefore {
		t.Fatalf("local store inventory: last seq %d, last checkpoint %d, follower applied %d",
			inv.LastSeq, inv.LastCheckpoint, appliedBefore)
	}

	// Leader moves on while the follower is down.
	appendChurn(t, r, "pb", 40)

	// Cold restart with the leader unreachable: state must come back
	// from local disk alone.
	gate := make(chan struct{})
	gatedDial := func() (net.Conn, error) {
		select {
		case <-gate:
			return r.dial()
		default:
			return nil, errors.New("leader unreachable")
		}
	}
	f2, err := Start(Config{
		Dial: gatedDial, Dir: dir, Store: sc,
		BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Market() == nil {
		t.Fatal("cold restart did not recover a market from the local store")
	}
	if got := f2.Applied(); got != appliedBefore {
		t.Fatalf("cold restart recovered seq %d, want local durable seq %d", got, appliedBefore)
	}
	if err := f2.Ready(); err != nil {
		t.Fatalf("locally recovered follower not ready: %v", err)
	}

	// Leader returns; the follower resumes from its local seq and
	// converges on everything it missed.
	close(gate)
	waitConverged(t, f2, r.feed, 5*time.Second)
	mustMatchLeader(t, r, f2)
	if err := f2.PersistErr(); err != nil {
		t.Fatalf("local persistence failed after restart: %v", err)
	}
}
