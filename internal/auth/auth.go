// Package auth implements the bid-to-buyer binding the paper assumes a
// deployment provides (Section 2.1, scope): "a technical mechanism to
// prevent false-name bidding is to bind bids to buyers via a signature
// scheme that requires a proof of identity". The arbiter issues each
// registered buyer a credential; every bid must carry a MAC computed
// with it over the bid's content and a monotonically increasing nonce,
// so bids cannot be forged under another buyer's name nor replayed.
//
// HMAC-SHA256 with per-buyer secrets keeps the mechanism symmetric and
// dependency-free: the arbiter both issues credentials and verifies
// bids. The package guards against forgery and replay by market
// participants, not against a compromised arbiter.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// Sentinel errors.
var (
	ErrUnknownBuyer = errors.New("auth: unknown buyer")
	ErrDuplicate    = errors.New("auth: buyer already enrolled")
	ErrBadSignature = errors.New("auth: signature verification failed")
	ErrReplay       = errors.New("auth: nonce already used or too old")
	ErrEmptyID      = errors.New("auth: empty buyer id")
)

// Credential is the secret issued to a buyer at enrollment. The buyer
// uses it to sign bids; the arbiter retains a copy to verify them.
type Credential struct {
	BuyerID string
	// Secret is the HMAC key, hex-encoded for transport.
	Secret string
}

// SignedBid is a bid bound to a buyer identity.
type SignedBid struct {
	BuyerID string
	Dataset string
	// AmountMicros is the bid amount in integer micro-currency: MACs
	// must cover a canonical byte encoding, and floats do not have one.
	AmountMicros int64
	// Nonce must strictly increase per buyer (wall-clock ticks,
	// sequence numbers — anything monotonic).
	Nonce uint64
	// MAC is the hex HMAC-SHA256 over the canonical payload.
	MAC string
}

// payload builds the canonical byte string the MAC covers.
func payload(buyer, dataset string, amountMicros int64, nonce uint64) []byte {
	// Length-prefixed fields: unambiguous under concatenation.
	out := make([]byte, 0, len(buyer)+len(dataset)+8*4)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(buyer)))
	out = append(out, n[:]...)
	out = append(out, buyer...)
	binary.BigEndian.PutUint64(n[:], uint64(len(dataset)))
	out = append(out, n[:]...)
	out = append(out, dataset...)
	binary.BigEndian.PutUint64(n[:], uint64(amountMicros))
	out = append(out, n[:]...)
	binary.BigEndian.PutUint64(n[:], nonce)
	out = append(out, n[:]...)
	return out
}

// Sign computes the MAC for a bid with the given credential, returning
// the complete SignedBid.
func Sign(cred Credential, dataset string, amountMicros int64, nonce uint64) (SignedBid, error) {
	key, err := hex.DecodeString(cred.Secret)
	if err != nil {
		return SignedBid{}, fmt.Errorf("auth: bad credential secret: %w", err)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload(cred.BuyerID, dataset, amountMicros, nonce))
	return SignedBid{
		BuyerID:      cred.BuyerID,
		Dataset:      dataset,
		AmountMicros: amountMicros,
		Nonce:        nonce,
		MAC:          hex.EncodeToString(mac.Sum(nil)),
	}, nil
}

// Verifier enrolls buyers and verifies signed bids. Safe for concurrent
// use.
type Verifier struct {
	mu sync.Mutex
	// secrets holds raw HMAC keys per buyer.
	secrets map[string][]byte
	// lastNonce tracks the highest accepted nonce per buyer.
	lastNonce map[string]uint64
	// keySource produces enrollment secrets; swapped in tests.
	keySource func() ([]byte, error)
	counter   uint64
}

// NewVerifier returns an empty verifier. Secrets are derived from
// crypto-quality randomness supplied by keySource; pass nil to use a
// deterministic counter-based source ONLY suitable for tests and
// simulations (documented so a deployment cannot misuse it silently).
func NewVerifier(keySource func() ([]byte, error)) *Verifier {
	v := &Verifier{
		secrets:   make(map[string][]byte),
		lastNonce: make(map[string]uint64),
		keySource: keySource,
	}
	if v.keySource == nil {
		v.keySource = v.testKeySource
	}
	return v
}

// testKeySource derives distinct but deterministic keys. Not for
// production: see NewVerifier.
func (v *Verifier) testKeySource() ([]byte, error) {
	v.counter++
	sum := sha256.Sum256([]byte("shield-test-key-" + strconv.FormatUint(v.counter, 10)))
	return sum[:], nil
}

// Enroll registers a buyer and returns its credential. Enrolling the
// same buyer twice fails: identity proofing happens once.
func (v *Verifier) Enroll(buyerID string) (Credential, error) {
	if buyerID == "" {
		return Credential{}, ErrEmptyID
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.secrets[buyerID]; ok {
		return Credential{}, fmt.Errorf("%w: %s", ErrDuplicate, buyerID)
	}
	key, err := v.keySource()
	if err != nil {
		return Credential{}, fmt.Errorf("auth: generating key: %w", err)
	}
	v.secrets[buyerID] = key
	return Credential{BuyerID: buyerID, Secret: hex.EncodeToString(key)}, nil
}

// Enrolled reports whether the buyer has a credential.
func (v *Verifier) Enrolled(buyerID string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.secrets[buyerID]
	return ok
}

// Verify checks a signed bid: the MAC must verify under the buyer's
// enrolled key and the nonce must strictly exceed the last accepted
// one. On success the nonce is consumed.
func (v *Verifier) Verify(b SignedBid) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	key, ok := v.secrets[b.BuyerID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBuyer, b.BuyerID)
	}
	want, err := hex.DecodeString(b.MAC)
	if err != nil {
		return fmt.Errorf("%w: undecodable MAC", ErrBadSignature)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload(b.BuyerID, b.Dataset, b.AmountMicros, b.Nonce))
	if !hmac.Equal(mac.Sum(nil), want) {
		return ErrBadSignature
	}
	// Replay protection: nonces strictly increase. Checked only after
	// the MAC verifies so an attacker cannot burn a victim's nonces.
	if b.Nonce <= v.lastNonce[b.BuyerID] {
		return fmt.Errorf("%w: nonce %d", ErrReplay, b.Nonce)
	}
	v.lastNonce[b.BuyerID] = b.Nonce
	return nil
}

// Revoke removes a buyer's credential (e.g. after detecting abuse);
// subsequent bids fail verification. Revoking an unknown buyer is a
// no-op.
func (v *Verifier) Revoke(buyerID string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.secrets, buyerID)
	delete(v.lastNonce, buyerID)
}
