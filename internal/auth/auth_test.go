package auth

import (
	"crypto/rand"
	"errors"
	"strings"
	"testing"
)

func enroll(t *testing.T, v *Verifier, id string) Credential {
	t.Helper()
	cred, err := v.Enroll(id)
	if err != nil {
		t.Fatal(err)
	}
	return cred
}

func TestSignAndVerify(t *testing.T) {
	v := NewVerifier(nil)
	cred := enroll(t, v, "alice")
	bid, err := Sign(cred, "weather", 120_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(bid); err != nil {
		t.Fatalf("valid bid rejected: %v", err)
	}
}

func TestCryptoRandKeySource(t *testing.T) {
	v := NewVerifier(func() ([]byte, error) {
		key := make([]byte, 32)
		_, err := rand.Read(key)
		return key, err
	})
	cred := enroll(t, v, "alice")
	bid, err := Sign(cred, "d", 5_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(bid); err != nil {
		t.Fatal(err)
	}
}

func TestEnrollmentRules(t *testing.T) {
	v := NewVerifier(nil)
	if _, err := v.Enroll(""); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: %v", err)
	}
	enroll(t, v, "alice")
	if !v.Enrolled("alice") || v.Enrolled("bob") {
		t.Error("Enrolled broken")
	}
	if _, err := v.Enroll("alice"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate enroll: %v", err)
	}
}

func TestDistinctBuyersGetDistinctKeys(t *testing.T) {
	v := NewVerifier(nil)
	a := enroll(t, v, "alice")
	b := enroll(t, v, "bob")
	if a.Secret == b.Secret {
		t.Fatal("two buyers share a secret")
	}
}

func TestForgeryRejected(t *testing.T) {
	v := NewVerifier(nil)
	alice := enroll(t, v, "alice")
	enroll(t, v, "bob")

	// Alice signs; mallory swaps the buyer name (false-name bidding).
	bid, err := Sign(alice, "weather", 100_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	forged := bid
	forged.BuyerID = "bob"
	if err := v.Verify(forged); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("false-name bid accepted: %v", err)
	}

	// Tampering with any signed field breaks the MAC.
	for name, mutate := range map[string]func(*SignedBid){
		"dataset": func(b *SignedBid) { b.Dataset = "other" },
		"amount":  func(b *SignedBid) { b.AmountMicros += 1 },
		"nonce":   func(b *SignedBid) { b.Nonce += 1 },
	} {
		tampered := bid
		mutate(&tampered)
		if err := v.Verify(tampered); !errors.Is(err, ErrBadSignature) {
			t.Errorf("%s tampering accepted: %v", name, err)
		}
	}

	// Garbage MAC strings are rejected, not crashed on.
	bad := bid
	bad.MAC = "zz-not-hex"
	if err := v.Verify(bad); !errors.Is(err, ErrBadSignature) {
		t.Errorf("garbage MAC: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	v := NewVerifier(nil)
	cred := enroll(t, v, "alice")
	bid, err := Sign(cred, "d", 10_000_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(bid); err != nil {
		t.Fatal(err)
	}
	// Same nonce again: replay.
	if err := v.Verify(bid); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
	// Older nonce: replay.
	old, err := Sign(cred, "d", 10_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(old); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale nonce accepted: %v", err)
	}
	// Strictly newer nonce: fine.
	next, err := Sign(cred, "d", 10_000_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(next); err != nil {
		t.Fatalf("fresh nonce rejected: %v", err)
	}
}

func TestUnknownBuyer(t *testing.T) {
	v := NewVerifier(nil)
	bid := SignedBid{BuyerID: "ghost", Dataset: "d", AmountMicros: 1, Nonce: 1, MAC: strings.Repeat("0", 64)}
	if err := v.Verify(bid); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("unknown buyer: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	v := NewVerifier(nil)
	cred := enroll(t, v, "alice")
	bid, err := Sign(cred, "d", 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.Revoke("alice")
	if err := v.Verify(bid); !errors.Is(err, ErrUnknownBuyer) {
		t.Fatalf("revoked credential still verifies: %v", err)
	}
	v.Revoke("never-enrolled") // no-op must not panic
	// Re-enrollment after revocation issues a fresh credential.
	again := enroll(t, v, "alice")
	if again.Secret == cred.Secret {
		t.Fatal("re-enrollment reused the revoked secret")
	}
}

func TestBadCredentialSecret(t *testing.T) {
	if _, err := Sign(Credential{BuyerID: "x", Secret: "not-hex"}, "d", 1, 1); err == nil {
		t.Fatal("undecodable secret accepted")
	}
}

func TestPayloadUnambiguous(t *testing.T) {
	// Field boundaries are length-prefixed: moving bytes between buyer
	// and dataset must change the payload.
	a := payload("ab", "c", 1, 1)
	b := payload("a", "bc", 1, 1)
	if string(a) == string(b) {
		t.Fatal("payload ambiguous under field-boundary shifts")
	}
}

func TestConcurrentVerify(t *testing.T) {
	v := NewVerifier(nil)
	cred := enroll(t, v, "alice")
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(n uint64) {
			bid, err := Sign(cred, "d", 1_000_000, n)
			if err == nil {
				err = v.Verify(bid)
				if errors.Is(err, ErrReplay) {
					err = nil // concurrent nonce races are expected
				}
			}
			done <- err
		}(uint64(i + 1))
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
