package command

import (
	"errors"
	"fmt"

	"github.com/datamarket/shield/internal/provenance"
)

// EventKind names what an Event records.
type EventKind int

// Event kinds, one per observable state transition.
const (
	EvBuyerRegistered EventKind = iota + 1
	EvSellerRegistered
	EvDatasetAdded
	EvDatasetRemoved
	EvTicked
	EvBidDecided
)

// Event records one state transition Apply performed. It is a flat
// struct rather than an interface so the live market's hot bid path can
// reuse one scratch buffer with zero per-bid boxing; fields are
// populated per Kind:
//
//   - EvBuyerRegistered: Buyer
//   - EvSellerRegistered: Seller
//   - EvDatasetAdded: Dataset, Seller (base only), Derived
//   - EvDatasetRemoved: Dataset, Seller
//   - EvTicked: Period (the new period)
//   - EvBidDecided: Buyer, Dataset, Amount, Period, Decision, Leaves
//     (demand-propagation targets, aliasing the provenance query — do
//     not mutate), and for wins Tx (the recorded sale) and Paid (the
//     total credited to sellers, which the market's books views apply
//     as an exact balance delta).
type Event struct {
	Kind     EventKind
	Buyer    BuyerID
	Seller   SellerID
	Dataset  DatasetID
	Derived  bool
	Period   int
	Amount   float64
	Decision Decision
	Leaves   []string
	Tx       *Transaction
	Paid     Money
}

// Apply executes cmd against st and returns the events it produced.
// It is the only code in the repository that mutates market state; the
// live market, journal replay, and the torture reference are shells
// around it. On error the state reflects the events already returned
// (only BidBatch can partially apply: its events are the bids that
// succeeded before the failing one).
//
// Serialization requirements are per command kind; see State.
func Apply(st *State, cmd Command) ([]Event, error) {
	return ApplyInto(st, cmd, nil)
}

// ApplyBid is the typed fast path for SubmitBid: semantically identical
// to ApplyInto(st, c, buf), but the concrete command never boxes into
// the Command interface — that conversion is a heap allocation per
// call, and the bid path is the one place the market makes millions of
// Apply calls a second. Serialization requirements match SubmitBid's
// (see State).
func ApplyBid(st *State, c SubmitBid, buf []Event) ([]Event, error) {
	evs := buf[:0]
	ev, err := st.applyBid(c.Buyer, c.Dataset, c.Amount)
	if err != nil {
		return evs, err
	}
	return append(evs, ev), nil
}

// ApplyInto is Apply appending into buf (sliced to zero length) so a
// hot caller can reuse one scratch buffer per serialization domain.
// Events may alias buf's backing array; the caller owns their lifetime
// until the next ApplyInto with the same buffer.
func ApplyInto(st *State, cmd Command, buf []Event) ([]Event, error) {
	evs := buf[:0]
	switch c := cmd.(type) {
	case RegisterBuyer:
		if c.Buyer == "" {
			return evs, ErrEmptyID
		}
		if _, ok := st.buyers[c.Buyer]; ok {
			return evs, fmt.Errorf("%w: buyer %s", ErrDuplicateID, c.Buyer)
		}
		st.buyers[c.Buyer] = &buyerAccount{
			lastBid:      make(map[DatasetID]int),
			blockedUntil: make(map[DatasetID]int),
			acquired:     make(map[DatasetID]bool),
		}
		return append(evs, Event{Kind: EvBuyerRegistered, Buyer: c.Buyer}), nil

	case RegisterSeller:
		if c.Seller == "" {
			return evs, ErrEmptyID
		}
		if _, ok := st.sellers[c.Seller]; ok {
			return evs, fmt.Errorf("%w: seller %s", ErrDuplicateID, c.Seller)
		}
		st.sellers[c.Seller] = &sellerAccount{}
		return append(evs, Event{Kind: EvSellerRegistered, Seller: c.Seller}), nil

	case UploadDataset:
		if c.Dataset == "" {
			return evs, ErrEmptyID
		}
		acct, ok := st.sellers[c.Seller]
		if !ok {
			return evs, fmt.Errorf("%w: %s", ErrUnknownSeller, c.Seller)
		}
		if err := st.graph.AddBase(string(c.Dataset)); err != nil {
			return evs, fmt.Errorf("%w: dataset %s", ErrDuplicateID, c.Dataset)
		}
		st.engines[c.Dataset] = st.newEngine(c.Dataset)
		st.owners[c.Dataset] = c.Seller
		acct.datasets = append(acct.datasets, c.Dataset)
		return append(evs, Event{Kind: EvDatasetAdded, Seller: c.Seller, Dataset: c.Dataset}), nil

	case ComposeDataset:
		if c.Dataset == "" {
			return evs, ErrEmptyID
		}
		parts := make([]string, len(c.Constituents))
		for i, p := range c.Constituents {
			parts[i] = string(p)
		}
		if err := st.graph.AddDerived(string(c.Dataset), parts...); err != nil {
			switch {
			case errors.Is(err, provenance.ErrExists):
				return evs, fmt.Errorf("%w: dataset %s", ErrDuplicateID, c.Dataset)
			case errors.Is(err, provenance.ErrUnknown):
				return evs, fmt.Errorf("%w: %v", ErrUnknownDataset, err)
			default:
				return evs, err
			}
		}
		st.engines[c.Dataset] = st.newEngine(c.Dataset)
		return append(evs, Event{Kind: EvDatasetAdded, Dataset: c.Dataset, Derived: true}), nil

	case WithdrawDataset:
		acct, ok := st.sellers[c.Seller]
		if !ok {
			return evs, fmt.Errorf("%w: %s", ErrUnknownSeller, c.Seller)
		}
		owner, ok := st.owners[c.Dataset]
		if !ok {
			return evs, fmt.Errorf("%w: %s is not a base dataset", ErrUnknownDataset, c.Dataset)
		}
		if owner != c.Seller {
			return evs, fmt.Errorf("%w: %s does not own %s", ErrUnknownSeller, c.Seller, c.Dataset)
		}
		deps, err := st.graph.Dependents(string(c.Dataset))
		if err != nil {
			return evs, err
		}
		for _, d := range deps {
			if d != string(c.Dataset) {
				return evs, fmt.Errorf("%w: %s is still part of %s", ErrDatasetInUse, c.Dataset, d)
			}
		}
		if err := st.graph.Remove(string(c.Dataset)); err != nil {
			return evs, err
		}
		delete(st.engines, c.Dataset)
		delete(st.owners, c.Dataset)
		for i, d := range acct.datasets {
			if d == c.Dataset {
				acct.datasets = append(acct.datasets[:i], acct.datasets[i+1:]...)
				break
			}
		}
		return append(evs, Event{Kind: EvDatasetRemoved, Seller: c.Seller, Dataset: c.Dataset}), nil

	case Tick:
		st.clock++
		return append(evs, Event{Kind: EvTicked, Period: st.clock}), nil

	case SubmitBid:
		ev, err := st.applyBid(c.Buyer, c.Dataset, c.Amount)
		if err != nil {
			return evs, err
		}
		return append(evs, ev), nil

	case BidBatch:
		for _, b := range c.Bids {
			ev, err := st.applyBid(b.Buyer, b.Dataset, b.Amount)
			if err != nil {
				return evs, err
			}
			evs = append(evs, ev)
		}
		return evs, nil

	case Settle:
		return evs, ErrNotMarket

	default:
		return evs, fmt.Errorf("command: unhandled command type %T", cmd)
	}
}

// applyBid is the bid rule: cadence and Time-Shield checks against the
// buyer's account, one engine interaction (plus demand propagation to
// the leaves of a derived dataset), then the money movement of a win.
// The caller must hold shared access plus serialization of every engine
// the bid touches.
func (st *State) applyBid(buyer BuyerID, dataset DatasetID, amount float64) (Event, error) {
	if !(amount > 0) {
		return Event{}, ErrBadBid
	}
	acct, ok := st.buyers[buyer]
	if !ok {
		return Event{}, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	eng, ok := st.engines[dataset]
	if !ok {
		return Event{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}

	// Resolve demand-propagation targets (Figure 1, step 2).
	var leaves []string
	if parts, ok := st.graph.Constituents(string(dataset)); ok && len(parts) > 0 {
		leaves, _ = st.graph.Leaves(string(dataset))
	}

	clock := st.clock

	acct.mu.Lock()
	if acct.acquired[dataset] {
		acct.mu.Unlock()
		return Event{}, fmt.Errorf("%w: %s", ErrAlreadyAcquired, dataset)
	}
	if last, ok := acct.lastBid[dataset]; ok && last == clock {
		acct.mu.Unlock()
		return Event{}, fmt.Errorf("%w: period %d", ErrBidTooSoon, clock)
	}
	if until := acct.blockedUntil[dataset]; clock < until {
		acct.mu.Unlock()
		return Event{}, fmt.Errorf("%w: %d periods remain", ErrWaitActive, until-clock)
	}
	acct.lastBid[dataset] = clock
	acct.mu.Unlock()

	d := eng.SubmitBid(amount)
	for _, leaf := range leaves {
		if le, ok := st.engines[DatasetID(leaf)]; ok {
			le.Observe(amount)
		}
	}

	ev := Event{
		Kind:    EvBidDecided,
		Buyer:   buyer,
		Dataset: dataset,
		Amount:  amount,
		Period:  clock,
		Leaves:  leaves,
	}
	if !d.Allocated {
		acct.mu.Lock()
		acct.blockedUntil[dataset] = clock + d.Wait
		acct.mu.Unlock()
		ev.Decision = Decision{WaitPeriods: d.Wait}
		return ev, nil
	}

	price := FromFloat(d.Price)
	acct.mu.Lock()
	acct.acquired[dataset] = true
	acct.spent += price
	acct.mu.Unlock()

	st.ledger.Lock()
	st.revenue += price
	paid := st.paySellers(dataset, leaves, price)
	tx := Transaction{
		Seq:     len(st.txs) + 1,
		Buyer:   buyer,
		Dataset: dataset,
		Price:   price,
		Period:  clock,
	}
	st.txs = append(st.txs, tx)
	st.ledger.Unlock()

	ev.Decision = Decision{Allocated: true, PricePaid: price}
	ev.Tx = &tx
	ev.Paid = paid
	return ev, nil
}
