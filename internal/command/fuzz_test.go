package command_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/torture"
)

// codec pairs one decoder with its encoder for the shared fuzz
// property.
type codec struct {
	name   string
	decode func([]byte) (command.Command, error)
	encode func(command.Command) ([]byte, error)
}

var codecs = []codec{
	{"json", command.DecodeJSON, command.EncodeJSON},
	{"binary", command.DecodeBinary, command.EncodeBinary},
}

// FuzzCommandDecode holds both codecs to their contract on arbitrary
// bytes: a decoder never panics; a failed decode wraps exactly the
// closed error set {ErrMalformed, ErrUnknownOp}; a successful decode
// re-encodes canonically and decodes back to the identical command
// (decode→encode→decode is the identity, and encode∘decode is
// idempotent on bytes).
//
// The seed corpus is a torture-harness workload replay — every command
// kind under realistic persona-driven traffic plus chaos ops' hostile
// amounts and identifiers — topped up with handcrafted edge encodings.
func FuzzCommandDecode(f *testing.F) {
	corpus, err := torture.CommandCorpus(1, 300)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range corpus {
		f.Add(b)
	}
	for _, b := range [][]byte{
		[]byte(`{"op":"tick"}`),
		[]byte(`{"op":"bid","buyer":"b00","dataset":"d000","amount":12.5}`),
		[]byte(`{"op":"bid","amount":-1e300}`),
		[]byte(`{"op":"compose","dataset":"c0","constituents":[]}`),
		[]byte(`{"op":"bid_batch","bids":[]}`),
		[]byte(`{"op":"settle","buyer":"b","dataset":"d","amount":3,"exante":true}`),
		[]byte(`{"op":"warp"}`),
		[]byte(`{"op":"tick"} {"op":"tick"}`),
		[]byte(`{"op":"tick","seq":1}`), // journal metadata is not a command field
		[]byte("{"),
		{},
		{0x08},       // binary tick
		{0x08, 0x00}, // binary tick + trailing byte
		{0x01, 0x03, 'b', '0', '0'},
		{0x01, 0xff}, // length prefix beyond input
		{0x09, 0x01, 'b', 0x01, 'd', 0, 0, 0, 0, 0, 0, 0x28, 0x40, 0x02}, // settle, bad bool
		{0xff},
	} {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			cmd, err := c.decode(data)
			if err != nil {
				if !errors.Is(err, command.ErrMalformed) && !errors.Is(err, command.ErrUnknownOp) {
					t.Fatalf("%s: decode error outside the closed set: %v", c.name, err)
				}
				continue
			}
			enc, err := c.encode(cmd)
			if err != nil {
				t.Fatalf("%s: decoded command %q does not re-encode: %v", c.name, cmd.Op(), err)
			}
			again, err := c.decode(enc)
			if err != nil {
				t.Fatalf("%s: canonical encoding of %q does not decode: %v", c.name, cmd.Op(), err)
			}
			if !reflect.DeepEqual(cmd, again) {
				t.Fatalf("%s: round trip changed the command:\n  first:  %#v\n  second: %#v", c.name, cmd, again)
			}
			enc2, err := c.encode(again)
			if err != nil {
				t.Fatalf("%s: re-encoding failed: %v", c.name, err)
			}
			if !reflect.DeepEqual(enc, enc2) {
				t.Fatalf("%s: encoding is not idempotent:\n  first:  %x\n  second: %x", c.name, enc, enc2)
			}
		}
	})
}
