package command

import (
	"errors"

	"github.com/datamarket/shield/internal/core"
)

// Sentinel errors returned by Apply (and re-exported by
// internal/market, which historically owned them — the strings keep the
// "market:" prefix so error text is byte-identical across the move;
// tooling, tests and the torture harness compare errors by full string).
var (
	ErrUnknownBuyer    = errors.New("market: unknown buyer")
	ErrUnknownSeller   = errors.New("market: unknown seller")
	ErrUnknownDataset  = errors.New("market: unknown dataset")
	ErrDuplicateID     = errors.New("market: identifier already registered")
	ErrBadBid          = errors.New("market: bid must be a positive amount")
	ErrBidTooSoon      = errors.New("market: buyer already bid this period")
	ErrWaitActive      = errors.New("market: buyer is in a Time-Shield wait period")
	ErrAlreadyAcquired = errors.New("market: buyer already owns this dataset")
	ErrEmptyID         = errors.New("market: empty identifier")
	ErrDatasetInUse    = errors.New("market: dataset backs derived products")
)

// ErrNotMarket is returned by Apply for commands that are part of the
// codec but do not target market state (today: Settle, which belongs to
// the ex-post arbiter).
var ErrNotMarket = errors.New("command: not a market-state command")

// BuyerID identifies a registered buyer.
type BuyerID string

// SellerID identifies a registered seller.
type SellerID string

// DatasetID identifies a dataset (base or derived).
type DatasetID string

// Transaction records one completed sale.
type Transaction struct {
	Seq     int
	Buyer   BuyerID
	Dataset DatasetID
	Price   Money
	Period  int
}

// Decision is the market's answer to a bid. Unlike core.Decision it hides
// the posting price from losers: a losing buyer learns only its wait.
type Decision struct {
	// Allocated reports whether the buyer won the dataset.
	Allocated bool
	// PricePaid is the posting price charged to a winner (zero for
	// losers).
	PricePaid Money
	// WaitPeriods is the number of periods the buyer must wait before
	// bidding on this dataset again (zero for winners).
	WaitPeriods int
}

// Config configures a market state machine.
type Config struct {
	// Engine is the pricing-engine template applied to every dataset;
	// each dataset's engine gets a seed derived from Seed and the dataset
	// ID.
	Engine core.Config
	// Seed is the market-level seed.
	Seed uint64
	// Shards is the number of lock shards the live market partitions
	// datasets across for concurrent bidding; 0 selects the market's
	// default. Shard count never affects pricing, only parallelism — the
	// command core ignores it entirely.
	Shards int
}

// DatasetStats is a diagnostic snapshot of one dataset's pricing engine.
// It is operator-facing: a deployment must not expose PostingPrice or
// MostLikelyPrice to buyers (that is the leak Uncertainty-Shield guards
// against).
type DatasetStats struct {
	Dataset     DatasetID
	Bids        int
	Allocations int
	Epochs      int
	Revenue     float64
	PostingPrice,
	MostLikelyPrice float64
}
