package command

import (
	"fmt"
	"math"
)

// Money is an amount of market currency in integer micro-units
// (1_000_000 micros = 1 currency unit). Ledgers, payments, and balances
// use Money so that splitting revenue among sellers never loses or mints
// currency to floating-point drift; the pricing math (which carries no
// ledger obligations) stays in float64 and is quantized at this boundary.
type Money int64

// Micro is the number of Money micro-units per currency unit.
const Micro Money = 1_000_000

// FromFloat converts a float64 currency amount to Money, rounding half
// away from zero. Values beyond the Money range saturate at the int64
// bounds rather than wrapping (a float-to-int conversion whose value
// overflows int64 is platform-dependent in Go and wraps to MinInt64 on
// amd64 — a positive price must never become a negative ledger entry).
// NaN converts to zero.
func FromFloat(f float64) Money {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * float64(Micro)
	// float64(MaxInt64) rounds up to 2^63, so scaled >= it implies the
	// rounded value cannot fit; the negative bound is exact.
	if scaled >= float64(math.MaxInt64) {
		return Money(math.MaxInt64)
	}
	if scaled <= float64(math.MinInt64) {
		return Money(math.MinInt64)
	}
	if f >= 0 {
		return Money(scaled + 0.5)
	}
	return Money(scaled - 0.5)
}

// Float converts m back to float64 currency units.
func (m Money) Float() float64 { return float64(m) / float64(Micro) }

// String renders m with six decimal places, e.g. "12.500000".
func (m Money) String() string {
	neg := m < 0
	if neg {
		m = -m
	}
	s := fmt.Sprintf("%d.%06d", m/Micro, m%Micro)
	if neg {
		return "-" + s
	}
	return s
}

// Split divides m into n non-negative parts that sum exactly to m, with
// the remainder distributed one micro at a time to the earliest parts.
// It panics if n <= 0 or m < 0.
func (m Money) Split(n int) []Money {
	if n <= 0 {
		panic("market: Split with n <= 0")
	}
	if m < 0 {
		panic("market: Split of negative Money")
	}
	base := m / Money(n)
	rem := m % Money(n)
	out := make([]Money, n)
	for i := range out {
		out[i] = base
		if Money(i) < rem {
			out[i]++
		}
	}
	return out
}
