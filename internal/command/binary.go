package command

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary opcode bytes, one per Op, in declaration order. The binary
// format is: opcode byte, then the op's fields in order — strings as
// uvarint length + bytes, floats as little-endian IEEE-754 bits, lists
// as uvarint count + elements, bools as one 0/1 byte. No padding, no
// framing: one command per buffer, trailing bytes are an error.
const (
	bopRegisterBuyer byte = iota + 1
	bopRegisterSeller
	bopUpload
	bopCompose
	bopWithdraw
	bopBid
	bopBidBatch
	bopTick
	bopSettle
)

// EncodeBinary returns cmd's canonical binary encoding.
func EncodeBinary(cmd Command) ([]byte, error) {
	var b []byte
	switch c := cmd.(type) {
	case RegisterBuyer:
		b = append(b, bopRegisterBuyer)
		b = appendString(b, string(c.Buyer))
	case RegisterSeller:
		b = append(b, bopRegisterSeller)
		b = appendString(b, string(c.Seller))
	case UploadDataset:
		b = append(b, bopUpload)
		b = appendString(b, string(c.Seller))
		b = appendString(b, string(c.Dataset))
	case ComposeDataset:
		b = append(b, bopCompose)
		b = appendString(b, string(c.Dataset))
		b = binary.AppendUvarint(b, uint64(len(c.Constituents)))
		for _, p := range c.Constituents {
			b = appendString(b, string(p))
		}
	case WithdrawDataset:
		b = append(b, bopWithdraw)
		b = appendString(b, string(c.Seller))
		b = appendString(b, string(c.Dataset))
	case SubmitBid:
		b = append(b, bopBid)
		b = appendString(b, string(c.Buyer))
		b = appendString(b, string(c.Dataset))
		b = appendFloat(b, c.Amount)
	case BidBatch:
		if len(c.Bids) == 0 {
			return nil, fmt.Errorf("%w: bid_batch with no bids", ErrMalformed)
		}
		b = append(b, bopBidBatch)
		b = binary.AppendUvarint(b, uint64(len(c.Bids)))
		for _, bid := range c.Bids {
			b = appendString(b, string(bid.Buyer))
			b = appendString(b, string(bid.Dataset))
			b = appendFloat(b, bid.Amount)
		}
	case Tick:
		b = append(b, bopTick)
	case Settle:
		b = append(b, bopSettle)
		b = appendString(b, string(c.Buyer))
		b = appendString(b, string(c.Dataset))
		b = appendFloat(b, c.Amount)
		if c.Exante {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownOp, cmd)
	}
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// binReader cursors over one encoded command. Every read is bounded by
// the remaining input, so a corrupted length prefix fails cleanly
// instead of attempting a giant allocation.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated binary command", ErrMalformed)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail()
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	// JSON number literals cannot carry NaN or infinities, so the binary
	// codec rejects them too: every decodable command has both
	// encodings, and NaN would break command equality besides.
	if math.IsNaN(f) || math.IsInf(f, 0) {
		if r.err == nil {
			r.err = fmt.Errorf("%w: non-finite float", ErrMalformed)
		}
		return 0
	}
	return f
}

func (r *binReader) boolByte() bool {
	if r.err != nil {
		return false
	}
	if len(r.data) < 1 {
		r.fail()
		return false
	}
	v := r.data[0]
	r.data = r.data[1:]
	if v > 1 {
		if r.err == nil {
			r.err = fmt.Errorf("%w: bool byte %d", ErrMalformed, v)
		}
		return false
	}
	return v == 1
}

// DecodeBinary parses one binary-encoded command. Errors wrap
// ErrMalformed or ErrUnknownOp, the same closed set as DecodeJSON.
func DecodeBinary(data []byte) (Command, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrMalformed)
	}
	r := &binReader{data: data[1:]}
	var cmd Command
	switch data[0] {
	case bopRegisterBuyer:
		cmd = RegisterBuyer{Buyer: BuyerID(r.str())}
	case bopRegisterSeller:
		cmd = RegisterSeller{Seller: SellerID(r.str())}
	case bopUpload:
		cmd = UploadDataset{Seller: SellerID(r.str()), Dataset: DatasetID(r.str())}
	case bopCompose:
		c := ComposeDataset{Dataset: DatasetID(r.str())}
		n := r.uvarint()
		// Each constituent needs at least one length byte, so a count
		// beyond the remaining bytes is unsatisfiable — reject before
		// allocating for it.
		if n > uint64(len(r.data)) {
			r.fail()
		} else if n > 0 { // leave nil for zero, the canonical absent form
			c.Constituents = make([]DatasetID, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				c.Constituents = append(c.Constituents, DatasetID(r.str()))
			}
		}
		cmd = c
	case bopWithdraw:
		cmd = WithdrawDataset{Seller: SellerID(r.str()), Dataset: DatasetID(r.str())}
	case bopBid:
		cmd = SubmitBid{Buyer: BuyerID(r.str()), Dataset: DatasetID(r.str()), Amount: r.float()}
	case bopBidBatch:
		n := r.uvarint()
		if n == 0 && r.err == nil {
			return nil, fmt.Errorf("%w: bid_batch with no bids", ErrMalformed)
		}
		// Each bid occupies at least 10 bytes (two length prefixes plus
		// a float64), bounding any claimed count.
		if n > uint64(len(r.data)) {
			r.fail()
		}
		var c BidBatch
		if r.err == nil {
			c.Bids = make([]SubmitBid, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				c.Bids = append(c.Bids, SubmitBid{
					Buyer:   BuyerID(r.str()),
					Dataset: DatasetID(r.str()),
					Amount:  r.float(),
				})
			}
		}
		cmd = c
	case bopTick:
		cmd = Tick{}
	case bopSettle:
		cmd = Settle{
			Buyer:   BuyerID(r.str()),
			Dataset: DatasetID(r.str()),
			Amount:  r.float(),
			Exante:  r.boolByte(),
		}
	default:
		return nil, fmt.Errorf("%w: opcode %d", ErrUnknownOp, data[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.data))
	}
	return cmd, nil
}
