package command

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Codec errors. DecodeJSON and DecodeBinary return errors wrapping
// exactly one of these two sentinels — a closed set callers can switch
// on, and the property FuzzCommandDecode holds the codecs to.
var (
	// ErrMalformed reports input that is not a well-formed encoding:
	// syntax errors, unknown or missing fields, trailing data, or
	// structurally invalid commands (e.g. an empty bid batch).
	ErrMalformed = errors.New("command: malformed encoding")
	// ErrUnknownOp reports a well-formed envelope whose op is not in the
	// closed command set.
	ErrUnknownOp = errors.New("command: unknown op")
)

// wireBid is one bid inside a bid_batch envelope. Field names match the
// journal's batch entries.
type wireBid struct {
	Buyer   BuyerID   `json:"buyer"`
	Dataset DatasetID `json:"dataset"`
	Amount  float64   `json:"amount"`
}

// wire is the JSON envelope shared by every command. Encoding is
// canonical: only the fields the op defines are populated, so
// decode→encode is a normalizing round trip (fields an op does not
// define are dropped, never preserved).
type wire struct {
	Op           Op          `json:"op"`
	Buyer        BuyerID     `json:"buyer,omitempty"`
	Seller       SellerID    `json:"seller,omitempty"`
	Dataset      DatasetID   `json:"dataset,omitempty"`
	Constituents []DatasetID `json:"constituents,omitempty"`
	Amount       float64     `json:"amount,omitempty"`
	Bids         []wireBid   `json:"bids,omitempty"`
	Exante       bool        `json:"exante,omitempty"`
}

// EncodeJSON returns cmd's canonical JSON encoding.
func EncodeJSON(cmd Command) ([]byte, error) {
	var w wire
	switch c := cmd.(type) {
	case RegisterBuyer:
		w = wire{Op: c.Op(), Buyer: c.Buyer}
	case RegisterSeller:
		w = wire{Op: c.Op(), Seller: c.Seller}
	case UploadDataset:
		w = wire{Op: c.Op(), Seller: c.Seller, Dataset: c.Dataset}
	case ComposeDataset:
		w = wire{Op: c.Op(), Dataset: c.Dataset, Constituents: c.Constituents}
	case WithdrawDataset:
		w = wire{Op: c.Op(), Seller: c.Seller, Dataset: c.Dataset}
	case SubmitBid:
		w = wire{Op: c.Op(), Buyer: c.Buyer, Dataset: c.Dataset, Amount: c.Amount}
	case BidBatch:
		if len(c.Bids) == 0 {
			return nil, fmt.Errorf("%w: bid_batch with no bids", ErrMalformed)
		}
		w = wire{Op: c.Op(), Bids: make([]wireBid, len(c.Bids))}
		for i, b := range c.Bids {
			w.Bids[i] = wireBid{Buyer: b.Buyer, Dataset: b.Dataset, Amount: b.Amount}
		}
	case Tick:
		w = wire{Op: c.Op()}
	case Settle:
		w = wire{Op: c.Op(), Buyer: c.Buyer, Dataset: c.Dataset, Amount: c.Amount, Exante: c.Exante}
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownOp, cmd)
	}
	return json.Marshal(w)
}

// DecodeJSON parses one JSON-encoded command. It is strict about the
// envelope — unknown fields, trailing data, and ops outside the closed
// set are errors (wrapping ErrMalformed or ErrUnknownOp) — but
// normalizing about content: fields the op does not define are dropped,
// so decoding non-canonical input and re-encoding yields the canonical
// form.
func DecodeJSON(data []byte) (Command, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wire
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after command", ErrMalformed)
	}
	return fromWire(w)
}

func fromWire(w wire) (Command, error) {
	switch w.Op {
	case OpRegisterBuyer:
		return RegisterBuyer{Buyer: w.Buyer}, nil
	case OpRegisterSeller:
		return RegisterSeller{Seller: w.Seller}, nil
	case OpUpload:
		return UploadDataset{Seller: w.Seller, Dataset: w.Dataset}, nil
	case OpCompose:
		parts := w.Constituents
		if len(parts) == 0 {
			parts = nil // canonical form: absent, not empty
		}
		return ComposeDataset{Dataset: w.Dataset, Constituents: parts}, nil
	case OpWithdraw:
		return WithdrawDataset{Seller: w.Seller, Dataset: w.Dataset}, nil
	case OpBid:
		return SubmitBid{Buyer: w.Buyer, Dataset: w.Dataset, Amount: w.Amount}, nil
	case OpBidBatch:
		if len(w.Bids) == 0 {
			return nil, fmt.Errorf("%w: bid_batch with no bids", ErrMalformed)
		}
		bids := make([]SubmitBid, len(w.Bids))
		for i, b := range w.Bids {
			bids[i] = SubmitBid{Buyer: b.Buyer, Dataset: b.Dataset, Amount: b.Amount}
		}
		return BidBatch{Bids: bids}, nil
	case OpTick:
		return Tick{}, nil
	case OpSettle:
		return Settle{Buyer: w.Buyer, Dataset: w.Dataset, Amount: w.Amount, Exante: w.Exante}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownOp, w.Op)
	}
}
