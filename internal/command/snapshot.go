package command

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/datamarket/shield/internal/core"
)

// BuyerSnapshot is one buyer account's serializable state.
type BuyerSnapshot struct {
	LastBid      map[DatasetID]int  `json:"last_bid,omitempty"`
	BlockedUntil map[DatasetID]int  `json:"blocked_until,omitempty"`
	Acquired     map[DatasetID]bool `json:"acquired,omitempty"`
	Spent        Money              `json:"spent"`
}

// SellerSnapshot is one seller account's serializable state.
type SellerSnapshot struct {
	Balance  Money       `json:"balance"`
	Datasets []DatasetID `json:"datasets,omitempty"`
}

// Snapshot is the market's full serializable state. Restoring it yields
// a state that behaves identically from that point on (engine randomness
// included), so a snapshot plus the command tail recorded after it
// reconstructs the books exactly.
type Snapshot struct {
	Config       Config                      `json:"config"`
	Clock        int                         `json:"clock"`
	Graph        map[string][]string         `json:"graph"`
	Engines      map[DatasetID]core.Snapshot `json:"engines"`
	Owners       map[DatasetID]SellerID      `json:"owners"`
	Buyers       map[BuyerID]BuyerSnapshot   `json:"buyers"`
	Sellers      map[SellerID]SellerSnapshot `json:"sellers"`
	Transactions []Transaction               `json:"transactions,omitempty"`
	Revenue      Money                       `json:"revenue"`
}

// Canonical returns the snapshot's canonical JSON encoding. Two markets
// are in identical states exactly when their snapshots' canonical
// encodings are byte-identical: encoding/json sorts map keys, every
// numeric field is either integer micro-currency or a deterministic
// float64, and engine snapshots embed the full RNG state. Crash-recovery
// and determinism tests compare states through this encoding.
func (s Snapshot) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Equal reports whether two snapshots describe the same market state.
func (s Snapshot) Equal(other Snapshot) bool {
	a, err := s.Canonical()
	if err != nil {
		return false
	}
	b, err := other.Canonical()
	if err != nil {
		return false
	}
	return bytes.Equal(a, b)
}

// Diff returns "" when the snapshots are equal, otherwise a short
// description naming the top-level sections that differ — precise enough
// to aim a failing recovery test without dumping two full states.
func (s Snapshot) Diff(other Snapshot) string {
	a, err := s.Canonical()
	if err != nil {
		return fmt.Sprintf("left snapshot not encodable: %v", err)
	}
	b, err := other.Canonical()
	if err != nil {
		return fmt.Sprintf("right snapshot not encodable: %v", err)
	}
	if bytes.Equal(a, b) {
		return ""
	}
	var am, bm map[string]json.RawMessage
	if json.Unmarshal(a, &am) != nil || json.Unmarshal(b, &bm) != nil {
		return "snapshots differ (undecodable sections)"
	}
	keys := make(map[string]bool, len(am)+len(bm))
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		if !bytes.Equal(am[k], bm[k]) {
			diffs = append(diffs, k)
		}
	}
	sort.Strings(diffs)
	return "snapshots differ in: " + strings.Join(diffs, ", ")
}
