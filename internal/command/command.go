// Package command is the deterministic core of the data market: a
// closed set of typed commands, canonical JSON and binary encodings for
// them, and a single Apply function that is the only code in the
// repository allowed to mutate market state.
//
// Everything above it is a shell around the same state machine:
//
//   - the live market (internal/market) is a concurrent shell — shards
//     serialize commands into Apply and publish lock-free read views;
//   - journal replay (internal/journal) upgrades recorded events to
//     commands and runs Apply in a loop;
//   - the torture harness's reference model (internal/torture) runs the
//     same Apply single-threaded.
//
// Because all three paths share Apply, "the replay matches the live
// market" and "the reference matches the live market" are structural
// facts rather than properties each test must re-establish against a
// hand-mirrored copy of the rules.
//
// # Determinism
//
// Apply is deterministic: the same command sequence applied to states
// built from the same Config yields byte-identical canonical snapshots.
// All randomness flows through per-dataset engine seeds derived from
// Config.Seed and the dataset ID, so neither shard count nor scheduling
// can influence outcomes. State methods use internal fine-grained locks
// (per-buyer accounts, the ledger) which make concurrent Apply calls for
// different datasets race-free, but serialization — and therefore
// determinism — is the caller's contract; see State.
package command

// Op names one command kind. The values double as the journal's
// on-disk op names, so a journal record's "op" field and a command's
// Op() agree by construction.
type Op string

// The closed command set. OpSettle is part of the codec (settlements
// travel through the same wire format) but does not target market
// state: Apply rejects it with ErrNotMarket and callers route it to the
// ex-post arbiter (internal/expost).
const (
	OpRegisterBuyer  Op = "register_buyer"
	OpRegisterSeller Op = "register_seller"
	OpUpload         Op = "upload"
	OpCompose        Op = "compose"
	OpWithdraw       Op = "withdraw"
	OpBid            Op = "bid"
	OpBidBatch       Op = "bid_batch"
	OpTick           Op = "tick"
	OpSettle         Op = "settle"
)

// Command is one market mutation. The set of implementations is closed:
// exactly the nine types below, one per Op value.
type Command interface {
	// Op returns the command's kind name (also its wire name).
	Op() Op
	isCommand()
}

// RegisterBuyer adds a buyer account.
type RegisterBuyer struct {
	Buyer BuyerID
}

// RegisterSeller adds a seller account.
type RegisterSeller struct {
	Seller SellerID
}

// UploadDataset registers a base dataset shared by Seller and starts
// pricing it.
type UploadDataset struct {
	Seller  SellerID
	Dataset DatasetID
}

// ComposeDataset registers a derived dataset assembled from existing
// datasets and starts pricing it.
type ComposeDataset struct {
	Dataset      DatasetID
	Constituents []DatasetID
}

// WithdrawDataset removes a base dataset its seller no longer shares.
type WithdrawDataset struct {
	Seller  SellerID
	Dataset DatasetID
}

// SubmitBid places one bid at the current period.
type SubmitBid struct {
	Buyer   BuyerID
	Dataset DatasetID
	Amount  float64
}

// BidBatch applies the bids of one batch submission strictly in order.
// It records a batch as a single journal event; the bids it carries are
// exactly the ones that succeeded when the batch was first applied.
type BidBatch struct {
	Bids []SubmitBid
}

// Tick advances the market clock by one period.
type Tick struct{}

// Settle is an ex-post settlement instruction (a bid or a request/pay
// round against the ex-post arbiter). It shares the command codec so
// settlement streams can be recorded and replayed alongside market
// commands, but it does not mutate market state: Apply returns
// ErrNotMarket and the caller routes it to internal/expost.
type Settle struct {
	Buyer   BuyerID
	Dataset DatasetID
	Amount  float64
	// Exante selects the ex-ante bid path; otherwise the settlement runs
	// the ex-post request/pay protocol.
	Exante bool
}

// Op implements Command.
func (RegisterBuyer) Op() Op   { return OpRegisterBuyer }
func (RegisterSeller) Op() Op  { return OpRegisterSeller }
func (UploadDataset) Op() Op   { return OpUpload }
func (ComposeDataset) Op() Op  { return OpCompose }
func (WithdrawDataset) Op() Op { return OpWithdraw }
func (SubmitBid) Op() Op       { return OpBid }
func (BidBatch) Op() Op        { return OpBidBatch }
func (Tick) Op() Op            { return OpTick }
func (Settle) Op() Op          { return OpSettle }

func (RegisterBuyer) isCommand()   {}
func (RegisterSeller) isCommand()  {}
func (UploadDataset) isCommand()   {}
func (ComposeDataset) isCommand()  {}
func (WithdrawDataset) isCommand() {}
func (SubmitBid) isCommand()       {}
func (BidBatch) isCommand()        {}
func (Tick) isCommand()            {}
func (Settle) isCommand()          {}
