package command

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/provenance"
)

type buyerAccount struct {
	mu           sync.Mutex        // guards all fields below
	lastBid      map[DatasetID]int // last period with a bid per dataset
	blockedUntil map[DatasetID]int // first period allowed to bid again
	acquired     map[DatasetID]bool
	spent        Money
}

type sellerAccount struct {
	balance  Money       // guarded by State.ledger
	datasets []DatasetID // requires exclusive access (structural command)
}

// State is the market state machine Apply mutates: participants, the
// provenance graph, one pricing engine per dataset, the clock, and the
// money books.
//
// # Concurrency contract
//
// State is thread-compatible, not thread-safe; serialization is the
// caller's job and follows the live market's sharding discipline:
//
//   - structural commands (registrations, uploads, composition,
//     withdrawal, Tick) and Snapshot require exclusive access — no other
//     Apply or read may be in flight;
//   - SubmitBid/BidBatch commands require shared access plus external
//     serialization per engine they touch (the primary dataset and, for a
//     derived dataset, its leaves) — internal/market uses lock shards,
//     the replay and reference shells are single-threaded;
//   - per-buyer account mutexes and the ledger mutex make the money
//     bookkeeping of concurrent shared-access bids race-free on their
//     own.
//
// Under that contract Apply is deterministic: the same command sequence
// against the same Config yields a byte-identical canonical Snapshot,
// regardless of shard count or scheduling.
type State struct {
	cfg     Config
	clock   int
	graph   *provenance.Graph
	engines map[DatasetID]*core.Engine
	owners  map[DatasetID]SellerID // base datasets only
	buyers  map[BuyerID]*buyerAccount
	sellers map[SellerID]*sellerAccount

	// ledger guards money movement: total revenue, the transaction log,
	// and seller balances.
	ledger  sync.Mutex
	txs     []Transaction
	revenue Money

	// perturb, when non-nil, is installed into every engine as a price
	// perturbation (test-only; see TestPerturbPrices).
	perturb func(float64) float64
}

// NewState builds an empty State; the engine template must validate.
func NewState(cfg Config) (*State, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("market: engine template: %w", err)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("market: negative shard count %d", cfg.Shards)
	}
	return &State{
		cfg:     cfg,
		graph:   provenance.NewGraph(),
		engines: make(map[DatasetID]*core.Engine),
		owners:  make(map[DatasetID]SellerID),
		buyers:  make(map[BuyerID]*buyerAccount),
		sellers: make(map[SellerID]*sellerAccount),
	}, nil
}

// MustNewState is NewState for static configurations; it panics on
// config errors.
func MustNewState(cfg Config) *State {
	st, err := NewState(cfg)
	if err != nil {
		panic(err)
	}
	return st
}

func (st *State) newEngine(id DatasetID) *core.Engine {
	cfg := st.cfg.Engine
	h := fnv.New64a()
	h.Write([]byte(id))
	cfg.Seed = st.cfg.Seed ^ h.Sum64()
	eng := core.MustNew(cfg)
	if st.perturb != nil {
		eng.TestSetPricePerturb(st.perturb)
	}
	return eng
}

// Config returns the configuration the state was built with.
func (st *State) Config() Config { return st.cfg }

// Period returns the current period. Requires shared access.
func (st *State) Period() int { return st.clock }

// HasBuyer reports whether the buyer is registered. Requires shared
// access.
func (st *State) HasBuyer(id BuyerID) bool {
	_, ok := st.buyers[id]
	return ok
}

// BidLeaves resolves what a bid on dataset will touch: it verifies the
// dataset is priced and returns the leaf datasets a bid on it propagates
// demand to (nil for a base dataset). The live market uses it to compute
// a bid's lock set before serializing the bid into Apply. Requires
// shared access.
func (st *State) BidLeaves(dataset DatasetID) ([]string, error) {
	if _, ok := st.engines[dataset]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	var leaves []string
	if parts, ok := st.graph.Constituents(string(dataset)); ok && len(parts) > 0 {
		leaves, _ = st.graph.Leaves(string(dataset))
	}
	return leaves, nil
}

// NumDatasets returns the number of priced datasets. Requires shared
// access.
func (st *State) NumDatasets() int { return len(st.engines) }

// DatasetIDs returns the registered dataset IDs, sorted. Requires
// shared access.
func (st *State) DatasetIDs() []DatasetID {
	out := make([]DatasetID, 0, len(st.engines))
	for id := range st.engines {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the diagnostic snapshot for a dataset. Requires shared
// access plus serialization of the dataset's engine (the live market
// holds its shard lock; single-threaded shells need nothing extra).
func (st *State) Stats(dataset DatasetID) (DatasetStats, error) {
	eng, ok := st.engines[dataset]
	if !ok {
		return DatasetStats{}, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	return DatasetStats{
		Dataset:         dataset,
		Bids:            eng.Bids(),
		Allocations:     eng.Allocations(),
		Epochs:          eng.Epochs(),
		Revenue:         eng.Revenue(),
		PostingPrice:    eng.PostingPrice(),
		MostLikelyPrice: eng.MostLikelyPrice(),
	}, nil
}

// ComputeWait returns the Time-Shield wait the dataset's engine would
// assign a losing bid of amount right now, without mutating anything.
// Requires shared access plus serialization of the dataset's engine.
func (st *State) ComputeWait(dataset DatasetID, amount float64) (int, error) {
	eng, ok := st.engines[dataset]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDataset, dataset)
	}
	return eng.ComputeWaitPeriod(amount), nil
}

// Totals returns the money books in one view: total revenue, the sum of
// every buyer's spend, and the sum of every seller's balance. In a
// conserving market all three are equal. Requires shared access.
func (st *State) Totals() (revenue, spent, balances Money) {
	for _, acct := range st.buyers {
		acct.mu.Lock()
		spent += acct.spent
		acct.mu.Unlock()
	}
	st.ledger.Lock()
	revenue = st.revenue
	for _, acct := range st.sellers {
		balances += acct.balance
	}
	st.ledger.Unlock()
	return revenue, spent, balances
}

// Revenue returns the total revenue raised so far. Requires shared
// access.
func (st *State) Revenue() Money {
	st.ledger.Lock()
	defer st.ledger.Unlock()
	return st.revenue
}

// SellerBalance returns a seller's accumulated compensation. Requires
// shared access.
func (st *State) SellerBalance(id SellerID) (Money, error) {
	acct, ok := st.sellers[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeller, id)
	}
	st.ledger.Lock()
	defer st.ledger.Unlock()
	return acct.balance, nil
}

// BuyerSpend returns the total a buyer has paid. Requires shared access.
func (st *State) BuyerSpend(id BuyerID) (Money, error) {
	acct, ok := st.buyers[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, id)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.spent, nil
}

// Owns reports whether the buyer has acquired the dataset. Requires
// shared access.
func (st *State) Owns(buyer BuyerID, dataset DatasetID) (bool, error) {
	acct, ok := st.buyers[buyer]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.acquired[dataset], nil
}

// WaitRemaining returns how many periods remain before the buyer may bid
// on the dataset again (0 when unblocked). Requires shared access.
func (st *State) WaitRemaining(buyer BuyerID, dataset DatasetID) (int, error) {
	acct, ok := st.buyers[buyer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBuyer, buyer)
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	if until := acct.blockedUntil[dataset]; st.clock < until {
		return until - st.clock, nil
	}
	return 0, nil
}

// BuyerIDs returns the registered buyer IDs, sorted. Requires shared
// access.
func (st *State) BuyerIDs() []BuyerID {
	out := make([]BuyerID, 0, len(st.buyers))
	for id := range st.buyers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InspectBuyer calls f with the buyer's live acquisition set and spend,
// under the buyer's account mutex, and reports whether the buyer exists.
// f must not retain or mutate the map. The live market uses it to
// publish read views that are consistent with concurrent wins on other
// datasets by the same buyer.
func (st *State) InspectBuyer(id BuyerID, f func(acquired map[DatasetID]bool, spent Money)) bool {
	acct, ok := st.buyers[id]
	if !ok {
		return false
	}
	acct.mu.Lock()
	f(acct.acquired, acct.spent)
	acct.mu.Unlock()
	return true
}

// SellerDatasets returns the base datasets a seller has uploaded.
// Requires shared access.
func (st *State) SellerDatasets(id SellerID) ([]DatasetID, error) {
	acct, ok := st.sellers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSeller, id)
	}
	out := make([]DatasetID, len(acct.datasets))
	copy(out, acct.datasets)
	return out, nil
}

// TxCount returns the number of recorded transactions. Requires shared
// access.
func (st *State) TxCount() int {
	st.ledger.Lock()
	defer st.ledger.Unlock()
	return len(st.txs)
}

// TxAt returns transaction i (0-based). Requires shared access.
func (st *State) TxAt(i int) Transaction {
	st.ledger.Lock()
	defer st.ledger.Unlock()
	return st.txs[i]
}

// Transactions returns a copy of the transaction log. Requires shared
// access.
func (st *State) Transactions() []Transaction {
	st.ledger.Lock()
	defer st.ledger.Unlock()
	out := make([]Transaction, len(st.txs))
	copy(out, st.txs)
	return out
}

// paySellers splits price across the owners of the base datasets backing
// dataset, exactly (no micro lost), deterministically (leaves are
// sorted), and returns the total actually credited. leaves may be
// pre-resolved by the caller (nil means "resolve here"). Callers must
// hold the ledger lock and have at least shared access.
func (st *State) paySellers(dataset DatasetID, leaves []string, price Money) Money {
	if leaves == nil {
		var err error
		leaves, err = st.graph.Leaves(string(dataset))
		if err != nil {
			return 0
		}
	}
	if len(leaves) == 0 {
		return 0
	}
	var credited Money
	parts := price.Split(len(leaves))
	for i, leaf := range leaves {
		owner, ok := st.owners[DatasetID(leaf)]
		if !ok {
			continue
		}
		if acct, ok := st.sellers[owner]; ok {
			acct.balance += parts[i]
			credited += parts[i]
		}
	}
	return credited
}

// TestPerturbPrices installs f as a price perturbation on every current
// and future engine (nil removes it). It exists for mutation-canary
// tests that prove the differential harness still detects a seeded
// pricing bug; production code must never call it. Requires exclusive
// access.
func (st *State) TestPerturbPrices(f func(price float64) float64) {
	st.perturb = f
	for _, eng := range st.engines {
		eng.TestSetPricePerturb(f)
	}
}

// Snapshot captures the whole state. Requires exclusive access.
func (st *State) Snapshot() Snapshot {
	s := Snapshot{
		Config:       st.cfg,
		Clock:        st.clock,
		Graph:        st.graph.Snapshot(),
		Engines:      make(map[DatasetID]core.Snapshot),
		Owners:       make(map[DatasetID]SellerID, len(st.owners)),
		Buyers:       make(map[BuyerID]BuyerSnapshot, len(st.buyers)),
		Sellers:      make(map[SellerID]SellerSnapshot, len(st.sellers)),
		Transactions: make([]Transaction, len(st.txs)),
		Revenue:      st.revenue,
	}
	for id, eng := range st.engines {
		s.Engines[id] = eng.Snapshot()
	}
	for id, owner := range st.owners {
		s.Owners[id] = owner
	}
	for id, acct := range st.buyers {
		bs := BuyerSnapshot{
			LastBid:      make(map[DatasetID]int, len(acct.lastBid)),
			BlockedUntil: make(map[DatasetID]int, len(acct.blockedUntil)),
			Acquired:     make(map[DatasetID]bool, len(acct.acquired)),
			Spent:        acct.spent,
		}
		for k, v := range acct.lastBid {
			bs.LastBid[k] = v
		}
		for k, v := range acct.blockedUntil {
			bs.BlockedUntil[k] = v
		}
		for k, v := range acct.acquired {
			bs.Acquired[k] = v
		}
		s.Buyers[id] = bs
	}
	for id, acct := range st.sellers {
		ss := SellerSnapshot{Balance: acct.balance, Datasets: make([]DatasetID, len(acct.datasets))}
		copy(ss.Datasets, acct.datasets)
		s.Sellers[id] = ss
	}
	copy(s.Transactions, st.txs)
	return s
}

// RestoreState reconstructs a state from a snapshot, validating
// cross-references (every engine has a graph node, every owner exists,
// every transaction's parties exist).
func RestoreState(s Snapshot) (*State, error) {
	if err := s.Config.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("market: snapshot config: %w", err)
	}
	if s.Clock < 0 || s.Revenue < 0 {
		return nil, fmt.Errorf("market: snapshot clock/revenue negative")
	}
	graph, err := provenance.FromSnapshot(s.Graph)
	if err != nil {
		return nil, fmt.Errorf("market: snapshot graph: %w", err)
	}
	if s.Config.Shards < 0 {
		return nil, fmt.Errorf("market: snapshot shard count negative")
	}
	st := &State{
		cfg:     s.Config,
		clock:   s.Clock,
		graph:   graph,
		engines: make(map[DatasetID]*core.Engine, len(s.Engines)),
		owners:  make(map[DatasetID]SellerID, len(s.Owners)),
		buyers:  make(map[BuyerID]*buyerAccount, len(s.Buyers)),
		sellers: make(map[SellerID]*sellerAccount, len(s.Sellers)),
		txs:     make([]Transaction, len(s.Transactions)),
		revenue: s.Revenue,
	}
	for id, es := range s.Engines {
		if !graph.Contains(string(id)) {
			return nil, fmt.Errorf("market: snapshot engine %s has no graph node", id)
		}
		eng, err := core.RestoreSnapshot(es)
		if err != nil {
			return nil, fmt.Errorf("market: snapshot engine %s: %w", id, err)
		}
		st.engines[id] = eng
	}
	for id := range s.Graph {
		if _, ok := s.Engines[DatasetID(id)]; !ok {
			return nil, fmt.Errorf("market: snapshot dataset %s has no engine", id)
		}
	}
	for id, owner := range s.Owners {
		if _, ok := s.Sellers[owner]; !ok {
			return nil, fmt.Errorf("market: snapshot dataset %s owned by unknown seller %s", id, owner)
		}
		st.owners[id] = owner
	}
	for id, bs := range s.Buyers {
		acct := &buyerAccount{
			lastBid:      make(map[DatasetID]int, len(bs.LastBid)),
			blockedUntil: make(map[DatasetID]int, len(bs.BlockedUntil)),
			acquired:     make(map[DatasetID]bool, len(bs.Acquired)),
			spent:        bs.Spent,
		}
		for k, v := range bs.LastBid {
			acct.lastBid[k] = v
		}
		for k, v := range bs.BlockedUntil {
			acct.blockedUntil[k] = v
		}
		for k, v := range bs.Acquired {
			acct.acquired[k] = v
		}
		st.buyers[id] = acct
	}
	for id, ss := range s.Sellers {
		acct := &sellerAccount{balance: ss.Balance, datasets: make([]DatasetID, len(ss.Datasets))}
		copy(acct.datasets, ss.Datasets)
		st.sellers[id] = acct
	}
	for i, tx := range s.Transactions {
		// Transactions are history, not live references: a sold dataset
		// may have been withdrawn since (buyers keep delivered data), so
		// only the buyer — who can never deregister — must still exist.
		if _, ok := st.buyers[tx.Buyer]; !ok {
			return nil, fmt.Errorf("market: snapshot transaction %d references unknown buyer %s", i, tx.Buyer)
		}
		st.txs[i] = tx
	}
	return st, nil
}
