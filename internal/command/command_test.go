package command_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/command"
	"github.com/datamarket/shield/internal/core"
)

func testConfig() command.Config {
	return command.Config{
		Engine: core.Config{
			Candidates:    auction.LinearGrid(10, 100, 10),
			EpochSize:     4,
			BidsPerPeriod: 1,
			MinBid:        1,
		},
		Seed: 7,
	}
}

// allCommands is one instance of every command in the closed set.
func allCommands() []command.Command {
	return []command.Command{
		command.RegisterBuyer{Buyer: "alice"},
		command.RegisterSeller{Seller: "acme"},
		command.UploadDataset{Seller: "acme", Dataset: "weather"},
		command.ComposeDataset{Dataset: "w+t", Constituents: []command.DatasetID{"weather", "traffic"}},
		command.WithdrawDataset{Seller: "acme", Dataset: "weather"},
		command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: 55.25},
		command.BidBatch{Bids: []command.SubmitBid{
			{Buyer: "alice", Dataset: "weather", Amount: 55},
			{Buyer: "bob", Dataset: "traffic", Amount: 70.5},
		}},
		command.Tick{},
		command.Settle{Buyer: "alice", Dataset: "weather", Amount: 12.5, Exante: true},
	}
}

func TestCodecRoundTripsEveryCommand(t *testing.T) {
	for _, cmd := range allCommands() {
		for _, c := range codecs {
			enc, err := c.encode(cmd)
			if err != nil {
				t.Fatalf("%s: encode %q: %v", c.name, cmd.Op(), err)
			}
			got, err := c.decode(enc)
			if err != nil {
				t.Fatalf("%s: decode %q: %v", c.name, cmd.Op(), err)
			}
			if !reflect.DeepEqual(cmd, got) {
				t.Errorf("%s: %q round trip changed the command:\n  in:  %#v\n  out: %#v", c.name, cmd.Op(), cmd, got)
			}
		}
	}
}

func TestJSONEncodingIsCanonical(t *testing.T) {
	enc, err := command.EncodeJSON(command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: 55})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"op":"bid","buyer":"alice","dataset":"weather","amount":55}`
	if string(enc) != want {
		t.Errorf("canonical bid encoding %s, want %s", enc, want)
	}
	// Non-canonical input (fields the op does not define) normalizes.
	cmd, err := command.DecodeJSON([]byte(`{"op":"tick","buyer":"alice","amount":3}`))
	if err != nil {
		t.Fatal(err)
	}
	enc, err = command.EncodeJSON(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != `{"op":"tick"}` {
		t.Errorf("tick with stray fields re-encoded as %s, want {\"op\":\"tick\"}", enc)
	}
}

func TestDecodeErrorsAreClosedSet(t *testing.T) {
	cases := []struct {
		name   string
		decode func([]byte) (command.Command, error)
		data   []byte
		want   error
	}{
		{"json syntax", command.DecodeJSON, []byte("{"), command.ErrMalformed},
		{"json unknown field", command.DecodeJSON, []byte(`{"op":"tick","bogus":1}`), command.ErrMalformed},
		{"json trailing data", command.DecodeJSON, []byte(`{"op":"tick"}{"op":"tick"}`), command.ErrMalformed},
		{"json empty batch", command.DecodeJSON, []byte(`{"op":"bid_batch"}`), command.ErrMalformed},
		{"json unknown op", command.DecodeJSON, []byte(`{"op":"warp"}`), command.ErrUnknownOp},
		{"binary empty", command.DecodeBinary, nil, command.ErrMalformed},
		{"binary unknown opcode", command.DecodeBinary, []byte{0xff}, command.ErrUnknownOp},
		{"binary truncated string", command.DecodeBinary, []byte{0x01, 0x05, 'a'}, command.ErrMalformed},
		{"binary trailing bytes", command.DecodeBinary, []byte{0x08, 0x00}, command.ErrMalformed},
		{"binary empty batch", command.DecodeBinary, []byte{0x07, 0x00}, command.ErrMalformed},
		{"binary bad bool", command.DecodeBinary, append([]byte{0x09, 0x01, 'b', 0x01, 'd'},
			0, 0, 0, 0, 0, 0, 0x28, 0x40, 2), command.ErrMalformed},
		{"binary nan amount", command.DecodeBinary, append([]byte{0x06, 0x01, 'b', 0x01, 'd'},
			0, 0, 0, 0, 0, 0, 0xf8, 0x7f), command.ErrMalformed},
	}
	for _, tc := range cases {
		_, err := tc.decode(tc.data)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// drive applies a small mixed history and returns the state.
func drive(t *testing.T) *command.State {
	t.Helper()
	st := command.MustNewState(testConfig())
	for _, cmd := range []command.Command{
		command.RegisterSeller{Seller: "acme"},
		command.RegisterSeller{Seller: "globex"},
		command.UploadDataset{Seller: "acme", Dataset: "weather"},
		command.UploadDataset{Seller: "globex", Dataset: "traffic"},
		command.ComposeDataset{Dataset: "w+t", Constituents: []command.DatasetID{"weather", "traffic"}},
		command.RegisterBuyer{Buyer: "alice"},
		command.RegisterBuyer{Buyer: "bob"},
		command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: 55},
		command.Tick{},
		command.BidBatch{Bids: []command.SubmitBid{
			{Buyer: "bob", Dataset: "traffic", Amount: 70},
			{Buyer: "alice", Dataset: "w+t", Amount: 130},
		}},
		command.Tick{},
		command.SubmitBid{Buyer: "bob", Dataset: "weather", Amount: 95},
	} {
		if _, err := command.Apply(st, cmd); err != nil {
			t.Fatalf("apply %q: %v", cmd.Op(), err)
		}
	}
	return st
}

func TestApplyIsDeterministic(t *testing.T) {
	a, err := drive(t).Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := drive(t).Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical command sequences produced different canonical snapshots")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	st := drive(t)
	snap := st.Snapshot()
	restored, err := command.RestoreState(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Snapshot().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("restore did not reproduce the snapshot")
	}
	// The restored state keeps evolving identically.
	if _, err := command.Apply(st, command.Tick{}); err != nil {
		t.Fatal(err)
	}
	if _, err := command.Apply(restored, command.Tick{}); err != nil {
		t.Fatal(err)
	}
	a, _ = st.Snapshot().Canonical()
	b, _ = restored.Snapshot().Canonical()
	if !bytes.Equal(a, b) {
		t.Error("restored state diverged from the original after one tick")
	}
}

func TestApplyErrors(t *testing.T) {
	st := drive(t)
	cases := []struct {
		name string
		cmd  command.Command
		want error
	}{
		{"unknown buyer", command.SubmitBid{Buyer: "ghost", Dataset: "weather", Amount: 10}, command.ErrUnknownBuyer},
		{"unknown dataset", command.SubmitBid{Buyer: "alice", Dataset: "ghost", Amount: 10}, command.ErrUnknownDataset},
		{"bad amount", command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: -1}, command.ErrBadBid},
		{"duplicate buyer", command.RegisterBuyer{Buyer: "alice"}, command.ErrDuplicateID},
		{"duplicate seller", command.RegisterSeller{Seller: "acme"}, command.ErrDuplicateID},
		{"upload by unknown seller", command.UploadDataset{Seller: "ghost", Dataset: "fresh"}, command.ErrUnknownSeller},
		{"withdraw by non-owner", command.WithdrawDataset{Seller: "globex", Dataset: "weather"}, command.ErrUnknownSeller},
		{"withdraw dataset in use", command.WithdrawDataset{Seller: "acme", Dataset: "weather"}, command.ErrDatasetInUse},
		{"settle is not a market command", command.Settle{Buyer: "alice", Dataset: "weather", Amount: 5}, command.ErrNotMarket},
	}
	for _, tc := range cases {
		if _, err := command.Apply(st, tc.cmd); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestApplyErrorStrings pins a few exact messages: the torture
// differential compares replica errors to reference errors by full
// string, so the formats are contract, not cosmetics.
func TestApplyErrorStrings(t *testing.T) {
	st := drive(t)
	_, err := command.Apply(st, command.SubmitBid{Buyer: "ghost", Dataset: "weather", Amount: 10})
	if got := err.Error(); got != "market: unknown buyer: ghost" {
		t.Errorf("unknown buyer message %q", got)
	}
	_, err = command.Apply(st, command.SubmitBid{Buyer: "alice", Dataset: "weather", Amount: 10})
	if got := err.Error(); got != "market: buyer already owns this dataset: weather" {
		t.Errorf("acquired message %q", got)
	}
}

func TestBidBatchStopsAtFirstError(t *testing.T) {
	st := drive(t)
	evs, err := command.Apply(st, command.BidBatch{Bids: []command.SubmitBid{
		{Buyer: "bob", Dataset: "w+t", Amount: 80},
		{Buyer: "ghost", Dataset: "weather", Amount: 60},
		{Buyer: "bob", Dataset: "traffic", Amount: 75},
	}})
	if !errors.Is(err, command.ErrUnknownBuyer) {
		t.Fatalf("batch error %v, want ErrUnknownBuyer", err)
	}
	if len(evs) != 1 {
		t.Fatalf("batch produced %d events before failing, want 1", len(evs))
	}
}

func TestApplyEvents(t *testing.T) {
	st := command.MustNewState(testConfig())
	evs, err := command.Apply(st, command.RegisterBuyer{Buyer: "alice"})
	if err != nil || len(evs) != 1 || evs[0].Kind != command.EvBuyerRegistered {
		t.Fatalf("register buyer events %+v (%v)", evs, err)
	}
	evs, err = command.Apply(st, command.Tick{})
	if err != nil || len(evs) != 1 || evs[0].Kind != command.EvTicked || evs[0].Period != 1 {
		t.Fatalf("tick events %+v (%v)", evs, err)
	}
}
