package userstudy

import (
	"math"
	"testing"

	"github.com/datamarket/shield/internal/stats"
)

func panel(t *testing.T) *Panel {
	t.Helper()
	return NewPanel(DefaultPanelSize, 2022)
}

func TestPanelSizeAndDeterminism(t *testing.T) {
	p := NewPanel(0, 1)
	if p.Size() != DefaultPanelSize {
		t.Fatalf("default size = %d", p.Size())
	}
	a, err := NewPanel(50, 9).RQ1(500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPanel(50, 9).RQ1(500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed panels diverged at %d", i)
		}
	}
}

func TestRQ1NearTruthfulShape(t *testing.T) {
	// Table 1 shape: mean ~0.9v, median ~0.9v, std meaningfully nonzero,
	// all bids in [0, 2v].
	p := panel(t)
	for _, v := range []float64{500, 1500} {
		bids, err := p.RQ1(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(bids) != 50 {
			t.Fatalf("n = %d", len(bids))
		}
		for _, b := range bids {
			if b < 0 || b > 2*v {
				t.Fatalf("bid %v outside slider range [0, %v]", b, 2*v)
			}
		}
		mean := stats.Mean(bids)
		if mean < 0.82*v || mean > 0.98*v {
			t.Errorf("v=%v: mean %v not near-truthful", v, mean)
		}
		med := stats.Median(bids)
		if med < 0.85*v || med > 1.0*v {
			t.Errorf("v=%v: median %v not near-truthful", v, med)
		}
		sd := stats.StdDev(bids)
		if sd < 0.05*v || sd > 0.3*v {
			t.Errorf("v=%v: std %v out of Table 1 ballpark", v, sd)
		}
		// Some spread in both directions, as in Figures 2a/2b.
		if stats.Max(bids) <= v {
			t.Errorf("v=%v: nobody over-bid", v)
		}
		if stats.Min(bids) >= 0.9*v {
			t.Errorf("v=%v: nobody discounted", v)
		}
	}
}

func TestRQ1RejectsBadValuation(t *testing.T) {
	p := panel(t)
	if _, err := p.RQ1(0); err == nil {
		t.Fatal("v=0 accepted")
	}
	if _, err := p.RQ2(-5); err == nil {
		t.Fatal("negative v accepted")
	}
	if _, err := p.RQ3(0); err == nil {
		t.Fatal("v=0 accepted for RQ3")
	}
	if _, err := p.RQ4(0, 4); err == nil {
		t.Fatal("v=0 accepted for RQ4")
	}
	if _, err := p.RQ4(100, 1); err == nil {
		t.Fatal("hours=1 accepted")
	}
	if _, err := p.RQ5(0, 4); err == nil {
		t.Fatal("v=0 accepted for RQ5")
	}
	if _, err := p.RQ5(100, 1); err == nil {
		t.Fatal("hours=1 accepted for RQ5")
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	rows, err := panel(t).Table1(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: 500 -> mean 456, std 81.66, median 450, p 0.35.
	// We require the same qualitative shape, not the exact numbers.
	r := rows[0]
	if r.Mean < 410 || r.Mean > 490 {
		t.Errorf("mean = %v, paper 456", r.Mean)
	}
	if r.Median < 425 || r.Median > 500 {
		t.Errorf("median = %v, paper 450", r.Median)
	}
	if r.Std < 25 || r.Std > 150 {
		t.Errorf("std = %v, paper 81.66", r.Std)
	}
	// The one-sample test must NOT reject near-truthfulness.
	if r.P < 0.05 {
		t.Errorf("p = %v, paper reports p >= 0.3 (no rejection)", r.P)
	}
	// The 1500 row scales: mean/median proportional.
	r2 := rows[1]
	if math.Abs(r2.Mean/r.Mean-3) > 0.25 {
		t.Errorf("1500 mean %v not ~3x the 500 mean %v", r2.Mean, r.Mean)
	}
}

func TestLeakStudyReproducesRQ2RQ3(t *testing.T) {
	for _, v := range []float64{500, 1500} {
		s, err := panel(t).RunLeakStudy(v)
		if err != nil {
			t.Fatal(err)
		}
		// Normality is rejected (the basis for using Wilcoxon).
		if s.NormalityK2.P > 0.05 && s.NormalitySF.P > 0.05 {
			t.Errorf("v=%v: neither normality test rejected (K2 p=%v, SF p=%v)",
				v, s.NormalityK2.P, s.NormalitySF.P)
		}
		// RQ2: the leak drops bids significantly.
		if s.PastVsNoLeak.P > 0.01 {
			t.Errorf("v=%v: leak drop not significant, p=%v", v, s.PastVsNoLeak.P)
		}
		if s.MeanDropPast <= 0 {
			t.Errorf("v=%v: mean drop under leak = %v", v, s.MeanDropPast)
		}
		// RQ3: randomization does not remove the drop entirely...
		if s.RandomVsNoLeak.P > 0.05 {
			t.Errorf("v=%v: random arm shows no residual drop, p=%v", v, s.RandomVsNoLeak.P)
		}
		// ...but it significantly recovers bids relative to the leak arm.
		if s.RandomVsPast.P > 0.01 {
			t.Errorf("v=%v: randomization recovery not significant, p=%v", v, s.RandomVsPast.P)
		}
		if !(s.MeanDropRandom < s.MeanDropPast) {
			t.Errorf("v=%v: random drop %v not smaller than past drop %v",
				v, s.MeanDropRandom, s.MeanDropPast)
		}
	}
}

func TestTimeShieldStudyReproducesRQ4RQ5(t *testing.T) {
	s, err := panel(t).RunTimeShieldStudy(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.NWp50) != 4 || len(s.Wp50) != 4 || len(s.HourlyP) != 4 {
		t.Fatalf("curve lengths: %d/%d/%d", len(s.NWp50), len(s.Wp50), len(s.HourlyP))
	}
	// RQ4: plans ascend without Time-Shield.
	for h := 1; h < 4; h++ {
		if s.NWp50[h] < s.NWp50[h-1]-1e-9 {
			t.Errorf("NW median not ascending at hour %d: %v", h, s.NWp50)
		}
	}
	// Early NW bids are clearly strategic (well below valuation).
	if s.NWp50[0] > 0.75*2000 {
		t.Errorf("NW opening median %v too close to truthful", s.NWp50[0])
	}
	// RQ5: Time-Shield lifts early bids...
	for h := 0; h < 3; h++ {
		if s.Wp50[h] <= s.NWp50[h] {
			t.Errorf("hour %d: W median %v not above NW %v", h, s.Wp50[h], s.NWp50[h])
		}
		if s.HourlyP[h] > 0.01 {
			t.Errorf("hour %d: lift not significant, p=%v", h, s.HourlyP[h])
		}
	}
	// ...but the final hour is near-truthful in both arms and not
	// significantly different.
	if s.HourlyP[3] < 0.05 {
		t.Errorf("final hour significantly different, p=%v", s.HourlyP[3])
	}
	if s.Wp50[3] < 0.8*2000 || s.NWp50[3] < 0.8*2000 {
		t.Errorf("final medians not near-truthful: W %v, NW %v", s.Wp50[3], s.NWp50[3])
	}
}

func TestHourPercentilesShape(t *testing.T) {
	plans := [][]float64{
		{10, 20, 30},
		{20, 30, 40},
		{30, 40, 50},
		{40, 50, 60},
	}
	p25, p50, p75 := HourPercentiles(plans)
	if len(p25) != 3 || len(p50) != 3 || len(p75) != 3 {
		t.Fatal("lengths")
	}
	if p50[0] != 25 || p50[2] != 45 {
		t.Fatalf("medians = %v", p50)
	}
	for h := 0; h < 3; h++ {
		if !(p25[h] <= p50[h] && p50[h] <= p75[h]) {
			t.Fatalf("percentile ordering broken at hour %d", h)
		}
	}
	a, b, c := HourPercentiles(nil)
	if a != nil || b != nil || c != nil {
		t.Fatal("empty plans should return nils")
	}
}

func TestLeakStudyDistributionsStayInRange(t *testing.T) {
	s, err := panel(t).RunLeakStudy(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range [][]float64{s.NoLeak, s.Past, s.Random} {
		if len(arm) != 50 {
			t.Fatalf("arm size %d", len(arm))
		}
		for _, b := range arm {
			if b < 0 || b > 1000 {
				t.Fatalf("bid %v outside [0, 1000]", b)
			}
		}
	}
	// Mean ordering: NoLeak > Random > Past.
	mNo, mPast, mRand := stats.Mean(s.NoLeak), stats.Mean(s.Past), stats.Mean(s.Random)
	if !(mNo > mRand && mRand > mPast) {
		t.Fatalf("mean ordering broken: NoLeak %v, Random %v, Past %v", mNo, mRand, mPast)
	}
}
