// Package userstudy replicates the paper's IRB user study (Section 7.1)
// with a panel of calibrated behavioral personas in place of the 50
// Prolific participants. Each persona encodes the behavioral
// regularities the paper documents:
//
//   - near-truthful anchoring (RQ1): bids cluster at or just below the
//     stated valuation, with a minority of discounters and over-bidders,
//     reproducing Table 1's mean/median/std shape;
//   - boundedly-rational leak reaction (RQ2): when told prices follow
//     past bids and shown the latest price, susceptible personas anchor
//     their bid near the leak;
//   - tempered reaction under price randomization (RQ3):
//     Uncertainty-Shield's message ("prices are random") shrinks but does
//     not eliminate the drop;
//   - ascending multi-round plans (RQ4): low openings rising to a
//     near-truthful final bid;
//   - caution under Time-Shield (RQ5): told that losing bids trigger
//     waits, personas lift their early bids, while the final bid stays
//     near-truthful in both arms.
//
// The same statistical machinery the paper uses (internal/stats) runs on
// the synthetic panel: one-sample Wilcoxon for RQ1, paired Wilcoxon for
// the interventions, and the normality tests that justify nonparametric
// testing.
package userstudy

import (
	"errors"

	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/stats"
)

// persona is one synthetic participant.
type persona struct {
	// anchor multiplies the valuation into the baseline (no-leak) bid,
	// e.g. 0.9 for the "bid a round number just under the value" habit.
	anchor float64
	// leakSusceptible personas drop their bid toward a leaked price.
	leakSusceptible bool
	// leakSensitivity in [0,1] interpolates between the baseline bid (0)
	// and the leak anchor (1).
	leakSensitivity float64
	// randomTemper in [0,1] scales leakSensitivity down when the market
	// is described as pricing randomly (RQ3).
	randomTemper float64
	// planStart is the fraction of valuation the persona opens with in a
	// multi-round plan (RQ4).
	planStart float64
	// waitLift is how much Time-Shield's warning raises the persona's
	// early bids (RQ5), as a fraction of valuation.
	waitLift float64
	// jitter is per-question multiplicative noise applied by the panel.
	jitter float64
}

// Panel is a reproducible synthetic participant panel.
type Panel struct {
	personas []persona
	rand     *rng.RNG
}

// DefaultPanelSize matches the paper's 50 completed participants.
const DefaultPanelSize = 50

// LeakFraction is the leaked price used by the RQ2/RQ3 protocols,
// expressed as a fraction of the valuation. The study showed participants
// "the latest price set by the arbiter"; we fix it below the typical bid
// so reacting to it visibly drops bids, as in the paper's figures.
const LeakFraction = 0.6

// NewPanel draws n personas deterministically from seed. n <= 0 selects
// DefaultPanelSize.
func NewPanel(n int, seed uint64) *Panel {
	if n <= 0 {
		n = DefaultPanelSize
	}
	r := rng.New(seed)
	ps := make([]persona, n)
	for i := range ps {
		ps[i] = drawPersona(r)
	}
	return &Panel{personas: ps, rand: r}
}

// drawPersona samples one participant from the calibrated population.
// The anchor mixture reproduces Table 1: mean bid ~0.91v, median 0.9v,
// std ~0.15v, with mass concentrated near the truthful bid, some
// discounters below and a few over-bidders above (Figures 2a/2b).
func drawPersona(r *rng.RNG) persona {
	p := persona{jitter: 0.02}
	switch u := r.Float64(); {
	case u < 0.35: // truthful
		p.anchor = 1.0
	case u < 0.75: // habitual "just below" bidders
		p.anchor = 0.9
	case u < 0.90: // moderate discounters
		p.anchor = r.Uniform(0.6, 0.85)
	case u < 0.95: // aggressive low-ballers
		p.anchor = r.Uniform(0.3, 0.5)
	default: // non-rational over-bidders
		p.anchor = r.Uniform(1.05, 1.3)
	}
	p.leakSusceptible = r.Bool(0.65)
	p.leakSensitivity = r.Uniform(0.5, 1.0)
	p.randomTemper = r.Uniform(0.15, 0.45)
	p.planStart = r.Uniform(0.25, 0.55)
	p.waitLift = r.Uniform(0.2, 0.4)
	return p
}

// Size returns the panel size.
func (p *Panel) Size() int { return len(p.personas) }

// clampBid keeps bids inside the study's slider range [0, 2v].
func clampBid(b, v float64) float64 {
	if b < 0 {
		return 0
	}
	if b > 2*v {
		return 2 * v
	}
	return b
}

// baselineBid is a persona's no-leak single-round bid for valuation v.
func (p *Panel) baselineBid(i int, v float64) float64 {
	pe := p.personas[i]
	b := v * pe.anchor * (1 + p.rand.Normal(0, pe.jitter))
	return clampBid(b, v)
}

// RQ1 returns the panel's bids for a dataset the company values at v,
// with no leak and a single round: the near-truthful baseline.
func (p *Panel) RQ1(v float64) ([]float64, error) {
	if !(v > 0) {
		return nil, errors.New("userstudy: valuation must be > 0")
	}
	out := make([]float64, p.Size())
	for i := range out {
		out[i] = p.baselineBid(i, v)
	}
	return out, nil
}

// RQ2 returns bids after participants learn the arbiter prices from past
// bids and see the latest price (LeakFraction*v): the boundedly-rational
// drop Uncertainty-Shield exists to tame.
func (p *Panel) RQ2(v float64) ([]float64, error) {
	if !(v > 0) {
		return nil, errors.New("userstudy: valuation must be > 0")
	}
	leak := LeakFraction * v
	out := make([]float64, p.Size())
	for i, pe := range p.personas {
		base := p.baselineBid(i, v)
		if !pe.leakSusceptible || leak >= base {
			out[i] = base
			continue
		}
		anchor := leak * (1 + p.rand.Uniform(0, 0.1))
		out[i] = clampBid((1-pe.leakSensitivity)*base+pe.leakSensitivity*anchor, v)
	}
	return out, nil
}

// RQ3 returns bids when participants are additionally told prices are set
// randomly (Uncertainty-Shield's effect): the drop shrinks but does not
// vanish.
func (p *Panel) RQ3(v float64) ([]float64, error) {
	if !(v > 0) {
		return nil, errors.New("userstudy: valuation must be > 0")
	}
	leak := LeakFraction * v
	out := make([]float64, p.Size())
	for i, pe := range p.personas {
		base := p.baselineBid(i, v)
		if !pe.leakSusceptible || leak >= base {
			out[i] = base
			continue
		}
		sens := pe.leakSensitivity * pe.randomTemper
		anchor := leak * (1 + p.rand.Uniform(0, 0.1))
		out[i] = clampBid((1-sens)*base+sens*anchor, v)
	}
	return out, nil
}

// RQ4 returns each participant's multi-round bidding plan over the given
// number of hours without Time-Shield: ascending from a low opener to a
// near-truthful final bid (the strategizing of Figure 2c, NW curves).
func (p *Panel) RQ4(v float64, hours int) ([][]float64, error) {
	if !(v > 0) {
		return nil, errors.New("userstudy: valuation must be > 0")
	}
	if hours < 2 {
		return nil, errors.New("userstudy: need at least 2 hours")
	}
	out := make([][]float64, p.Size())
	for i, pe := range p.personas {
		final := p.baselineBid(i, v)
		start := pe.planStart * v
		if start > final {
			start = final
		}
		plan := make([]float64, hours)
		for h := 0; h < hours; h++ {
			frac := float64(h) / float64(hours-1)
			bid := start + (final-start)*frac
			plan[h] = clampBid(bid*(1+p.rand.Normal(0, pe.jitter)), v)
		}
		plan[hours-1] = final
		out[i] = plan
	}
	return out, nil
}

// RQ5 returns the plans when participants are told that losing bids incur
// a wait proportional to the gap between bid and price (Time-Shield): the
// early bids lift toward truthfulness, while the final bid matches RQ4's
// near-truthful level (Figure 2c, W curves).
func (p *Panel) RQ5(v float64, hours int) ([][]float64, error) {
	if !(v > 0) {
		return nil, errors.New("userstudy: valuation must be > 0")
	}
	if hours < 2 {
		return nil, errors.New("userstudy: need at least 2 hours")
	}
	out := make([][]float64, p.Size())
	for i, pe := range p.personas {
		final := p.baselineBid(i, v)
		start := (pe.planStart + pe.waitLift) * v
		if start > final {
			start = final
		}
		plan := make([]float64, hours)
		for h := 0; h < hours; h++ {
			frac := float64(h) / float64(hours-1)
			bid := start + (final-start)*frac
			plan[h] = clampBid(bid*(1+p.rand.Normal(0, pe.jitter)), v)
		}
		plan[hours-1] = final
		out[i] = plan
	}
	return out, nil
}

// HourPercentiles reduces per-participant plans to the 25th, 50th and
// 75th percentile bids per hour — the curves Figure 2c plots.
func HourPercentiles(plans [][]float64) (p25, p50, p75 []float64) {
	if len(plans) == 0 {
		return nil, nil, nil
	}
	hours := len(plans[0])
	p25 = make([]float64, hours)
	p50 = make([]float64, hours)
	p75 = make([]float64, hours)
	col := make([]float64, len(plans))
	for h := 0; h < hours; h++ {
		for i, plan := range plans {
			col[i] = plan[h]
		}
		ps := stats.PercentilesSorted(col, 25, 50, 75)
		p25[h], p50[h], p75[h] = ps[0], ps[1], ps[2]
	}
	return p25, p50, p75
}
