package userstudy

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenAggregates pins the user-study aggregates the paper reports:
// Table 1 rows for three valuations plus the RQ4/RQ5 bidding-plan hour
// percentiles. Any change to the persona model, the panel RNG stream, or
// the statistics stack shows up as a diff against the checked-in file.
type goldenAggregates struct {
	Table1 []Table1Row `json:"table1"`
	RQ4P25 []float64   `json:"rq4_p25"`
	RQ4P50 []float64   `json:"rq4_p50"`
	RQ4P75 []float64   `json:"rq4_p75"`
	RQ5P25 []float64   `json:"rq5_p25"`
	RQ5P50 []float64   `json:"rq5_p50"`
	RQ5P75 []float64   `json:"rq5_p75"`
}

func TestGoldenAggregates(t *testing.T) {
	p := NewPanel(50, 7)
	got := goldenAggregates{}

	rows, err := p.Table1(100, 500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	got.Table1 = rows

	rq4, err := p.RQ4(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	got.RQ4P25, got.RQ4P50, got.RQ4P75 = HourPercentiles(rq4)

	rq5, err := p.RQ5(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	got.RQ5P25, got.RQ5P50, got.RQ5P75 = HourPercentiles(rq5)

	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')

	path := filepath.Join("testdata", "table1_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("user-study aggregates diverge from %s\n got: %s\nwant: %s\n(run with -update if the change is intentional)",
			path, buf, want)
	}
}
