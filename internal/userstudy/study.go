package userstudy

import (
	"fmt"

	"github.com/datamarket/shield/internal/stats"
)

// Table1Row is one row of the paper's Table 1: descriptive statistics of
// the RQ1 bids plus the one-sample Wilcoxon p-value against the median of
// the persona population's target (the near-truthful anchor 0.9v).
type Table1Row struct {
	Valuation float64
	Mean      float64
	Std       float64
	Median    float64
	// P is the one-sample Wilcoxon p-value testing whether the sample
	// median differs from the population median; the paper reports
	// p >= 0.3 and concludes it does not.
	P float64
}

// Table1 reproduces Table 1 for the given valuations.
func (p *Panel) Table1(valuations ...float64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(valuations))
	for _, v := range valuations {
		bids, err := p.RQ1(v)
		if err != nil {
			return nil, err
		}
		med := stats.Median(bids)
		// The paper tests the sample median against the median of the
		// (unknown) bid distribution and fails to reject. Our persona
		// population's median anchor is 0.9, so the distribution median
		// is 0.9v.
		res, err := stats.WilcoxonOneSample(bids, 0.9*v, stats.TwoSided)
		pval := 1.0
		if err == nil {
			pval = res.P
		}
		rows = append(rows, Table1Row{
			Valuation: v,
			Mean:      stats.Mean(bids),
			Std:       stats.StdDev(bids),
			Median:    med,
			P:         pval,
		})
	}
	return rows, nil
}

// LeakStudy is the RQ1-RQ3 protocol outcome for one valuation: the three
// bid distributions of Figures 2a/2b plus the paired tests backing the
// paper's conclusions.
type LeakStudy struct {
	Valuation float64
	// NoLeak, Past and Random are the three intervention arms.
	NoLeak, Past, Random []float64
	// Normality holds the two normality tests on the NoLeak bids; both
	// reject at the paper's n, which is why the Wilcoxon tests follow.
	NormalityK2, NormalitySF stats.TestResult
	// PastVsNoLeak tests whether the leak dropped bids (the paper
	// rejects the null: leaks drop bids).
	PastVsNoLeak stats.TestResult
	// RandomVsNoLeak tests whether randomized prices still drop bids
	// (rejected too, but with a much smaller effect).
	RandomVsNoLeak stats.TestResult
	// RandomVsPast tests whether randomization recovers bid levels
	// relative to the leak arm (the paper rejects: Random > Past).
	RandomVsPast stats.TestResult
	// MeanDropPast and MeanDropRandom are mean bid drops from NoLeak.
	MeanDropPast, MeanDropRandom float64
}

// RunLeakStudy runs the RQ1/RQ2/RQ3 protocol at valuation v.
func (p *Panel) RunLeakStudy(v float64) (LeakStudy, error) {
	noLeak, err := p.RQ1(v)
	if err != nil {
		return LeakStudy{}, err
	}
	past, err := p.RQ2(v)
	if err != nil {
		return LeakStudy{}, err
	}
	random, err := p.RQ3(v)
	if err != nil {
		return LeakStudy{}, err
	}
	s := LeakStudy{Valuation: v, NoLeak: noLeak, Past: past, Random: random}
	s.MeanDropPast = stats.Mean(noLeak) - stats.Mean(past)
	s.MeanDropRandom = stats.Mean(noLeak) - stats.Mean(random)

	if k2, err := stats.DAgostinoPearson(noLeak); err == nil {
		s.NormalityK2 = k2
	}
	if sf, err := stats.ShapiroFrancia(noLeak); err == nil {
		s.NormalitySF = sf
	}
	// One-sided: the alternative is that the intervention arm is lower.
	if r, err := stats.WilcoxonSignedRank(past, noLeak, stats.Less); err == nil {
		s.PastVsNoLeak = r
	} else {
		return LeakStudy{}, fmt.Errorf("userstudy: past-vs-noleak: %w", err)
	}
	if r, err := stats.WilcoxonSignedRank(random, noLeak, stats.Less); err == nil {
		s.RandomVsNoLeak = r
	} else {
		return LeakStudy{}, fmt.Errorf("userstudy: random-vs-noleak: %w", err)
	}
	if r, err := stats.WilcoxonSignedRank(random, past, stats.Greater); err == nil {
		s.RandomVsPast = r
	} else {
		return LeakStudy{}, fmt.Errorf("userstudy: random-vs-past: %w", err)
	}
	return s, nil
}

// TimeShieldStudy is the RQ4/RQ5 protocol outcome: multi-round bid plans
// with (W) and without (NW) Time-Shield, reduced to Figure 2c's
// percentile curves, plus per-hour paired tests.
type TimeShieldStudy struct {
	Valuation float64
	Hours     int
	// NW* and W* are the Figure 2c percentile curves per hour.
	NWp25, NWp50, NWp75 []float64
	Wp25, Wp50, Wp75    []float64
	// HourlyP[h] is the paired Wilcoxon p-value (alternative: W > NW) at
	// hour h. The paper reports significance everywhere but the final
	// hour, where both arms bid near-truthfully.
	HourlyP []float64
}

// RunTimeShieldStudy runs the RQ4/RQ5 protocol at valuation v over the
// given number of hours (the paper uses 4 with price 2000).
func (p *Panel) RunTimeShieldStudy(v float64, hours int) (TimeShieldStudy, error) {
	nw, err := p.RQ4(v, hours)
	if err != nil {
		return TimeShieldStudy{}, err
	}
	w, err := p.RQ5(v, hours)
	if err != nil {
		return TimeShieldStudy{}, err
	}
	s := TimeShieldStudy{Valuation: v, Hours: hours}
	s.NWp25, s.NWp50, s.NWp75 = HourPercentiles(nw)
	s.Wp25, s.Wp50, s.Wp75 = HourPercentiles(w)
	s.HourlyP = make([]float64, hours)
	colNW := make([]float64, len(nw))
	colW := make([]float64, len(w))
	for h := 0; h < hours; h++ {
		for i := range nw {
			colNW[i] = nw[i][h]
			colW[i] = w[i][h]
		}
		res, err := stats.WilcoxonSignedRank(colW, colNW, stats.Greater)
		if err != nil {
			// Final hour: both arms bid identically near-truthfully, so
			// all differences can be zero — that is the paper's "no
			// difference in the last hour" finding.
			s.HourlyP[h] = 1
			continue
		}
		s.HourlyP[h] = res.P
	}
	return s, nil
}
