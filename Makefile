# Development targets. `make ci` is the full gate a change must pass.

GO ?= go

.PHONY: ci vet build test race bench fuzz-smoke

ci: vet build race test fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The concurrency-sensitive packages run under the race detector: the
# sharded market arbiter, the HTTP layer that fans batches into it, the
# journal (crash-recovery harness appends concurrently), and the
# telemetry registry/tracer (scraped while updated).
race:
	$(GO) test -race ./internal/market/... ./internal/httpapi/... ./internal/journal/... ./internal/obs/...

test:
	$(GO) test ./...

# Every fuzz target gets a short randomized run on each CI pass; real
# corpus-growing sessions use `go test -fuzz <target> -fuzztime 10m` by
# hand. Go allows one -fuzz target per invocation, hence the loop.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzReadNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/journal/
	$(GO) test -run xxx -fuzz '^FuzzDescriptiveNeverNonsense$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzWilcoxonBounds$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzOptimalPrice$$' -fuzztime $(FUZZ_TIME) ./internal/auction/
	$(GO) test -run xxx -fuzz '^FuzzEpochPricerNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/auction/

bench:
	$(GO) test -run xxx -bench . -benchmem .
