# Development targets. `make ci` is the full gate a change must pass.

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-save bench-save-smoke fuzz-smoke metrics-lint torture torture-smoke torture-long slo-smoke slo-full replica-smoke segment-smoke cover

ci: fmt-check vet metrics-lint build race test fuzz-smoke torture-smoke torture segment-smoke slo-smoke replica-smoke bench-save-smoke

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static check over every metric the binaries register: naming
# conventions (shield_ prefix, unit suffixes), label hygiene, and
# histogram bucket sanity. Catches drift before a dashboard does.
metrics-lint:
	$(GO) run ./cmd/metricslint

build:
	$(GO) build ./...

# The concurrency-sensitive packages run under the race detector: the
# sharded market arbiter, the HTTP layer that fans batches into it, the
# journal (crash-recovery harness appends concurrently), the
# telemetry registry/tracer (scraped while updated), the replication
# feed/follower (commit hook racing subscribers and kills), and the
# shieldtop poller (refresh loop racing terminal resize/teardown).
race:
	$(GO) test -race ./internal/market/... ./internal/httpapi/... ./internal/journal/... ./internal/obs/... ./internal/wire/... ./internal/client/... ./internal/replica/... ./internal/loadrig/... ./cmd/shieldtop/... ./cmd/metricslint/...

test:
	$(GO) test ./...

# Every fuzz target gets a short randomized run on each CI pass; real
# corpus-growing sessions use `go test -fuzz <target> -fuzztime 10m` by
# hand. Go allows one -fuzz target per invocation, hence the loop.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzReadNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/journal/
	$(GO) test -run xxx -fuzz '^FuzzDescriptiveNeverNonsense$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzWilcoxonBounds$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzOptimalPrice$$' -fuzztime $(FUZZ_TIME) ./internal/auction/
	$(GO) test -run xxx -fuzz '^FuzzEpochPricerNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/auction/
	$(GO) test -run xxx -fuzz '^FuzzBidBatchDecode$$' -fuzztime $(FUZZ_TIME) ./internal/httpapi/
	$(GO) test -run xxx -fuzz '^FuzzCommandDecode$$' -fuzztime $(FUZZ_TIME) ./internal/command/
	$(GO) test -run xxx -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZ_TIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzReplicateDecode$$' -fuzztime $(FUZZ_TIME) ./internal/wire/

# Model-based torture: seeded workloads differentially tested against the
# sequential reference model at shard counts {1,4,16} (~30s). Failures
# print a `shieldstorm -seed N -ops M` reproduction line.
TORTURE_SEED ?= 1
torture:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 2 -ops 100000

# Quick differential pass at the shard extremes (1 = fully serialized,
# 16 = default parallelism) — catches sharding bugs in seconds before
# ci pays for the full matrix.
torture-smoke:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 1 -ops 20000 -shards 1,16

# Nightly soak: many seeds, longer histories.
torture-long:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 16 -ops 250000 -v

# Segmented-store gate: a differential storm with the store twin riding
# along — segment rotation, snapshot checkpoints, background compaction
# and two seeded crash-cut recovery drills, all under a disk ceiling —
# then the load rig's -compact-every scenario, where checkpointing and
# compaction run against live load and the bid tail must hold the SLO.
segment-smoke:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -ops 20000 -shards 1,16 \
		-store -segment-records 512 -checkpoint-every 2000 -disk-ceiling-mb 64
	$(GO) run ./cmd/shieldload -transport both -clients 512 -rate 1500 \
		-ops 6000 -tick-every 400 -store -compact-every 1000 -segment-records 512 \
		-slo 'bid.p99<1s,error_rate<0.1%,throughput>=500'

# Aggregate statement coverage across all packages; the closing line is
# the figure recorded in EXPERIMENTS.md.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Cluster-in-process load rig with SLO gates (cmd/shieldload): one
# process boots a real marketd-equivalent server (HTTP + wire over a
# group-commit journaled market), drives 1k+ persona clients open-loop,
# and fails on an SLO, money-conservation, or journal-replay violation.
# The smoke thresholds are deliberately loose — they gate against order-
# of-magnitude regressions and broken accounting, not CI-machine noise.
slo-smoke:
	$(GO) run ./cmd/shieldload -transport both -clients 1024 -rate 1500 \
		-ops 9000 -tick-every 400 \
		-slo 'bid.p99<1s,query.p99<1s,error_rate<0.1%,throughput>=500'

# Replication smoke: the leader plus two in-process read replicas, a
# tenth of the traffic served by the replicas, one follower killed and
# redialing at the schedule midpoint. Gates on the replica read tail,
# the worst replication staleness any follower showed (including the
# kill's reconnect window), and the post-run invariant that every
# follower snapshot converges byte-identical to the leader's.
replica-smoke:
	$(GO) run ./cmd/shieldload -transport both -clients 512 -rate 1500 \
		-ops 6000 -tick-every 400 -followers 2 -replica-fraction 0.1 \
		-replica-kill \
		-slo 'bid.p99<1s,replica.p99<1s,replica.lag<5s,error_rate<0.1%'

# Longer gate for local perf work: more clients, more load, a tighter
# tail budget and a real throughput floor.
slo-full:
	$(GO) run ./cmd/shieldload -transport both -clients 2048 -rate 2500 \
		-ops 50000 -tick-every 500 \
		-slo 'bid.p99<500ms,bid.p999<2s,query.p99<500ms,error_rate<0.1%,throughput>=2000'

# Runs the journal-durability and transport benchmarks and records them
# (with the derived group-commit and wire-vs-HTTP speedups) in
# BENCH_6.json, the load rig's whole-system measurement in BENCH_7.json,
# the tracing-overhead-per-bid measurement in BENCH_8.json, and the
# segmented store's O(tail) recovery-ratio measurement in BENCH_10.json,
# keeping the performance claims in DESIGN.md reproducible.
bench-save:
	$(GO) run ./cmd/benchsave -benchtime 1s

# CI variant: a short benchtime, a small rig and scaled-down recovery
# stores keep the gate fast while still proving the benchmarks run and
# all four artifact pipelines work end to end.
bench-save-smoke:
	$(GO) run ./cmd/benchsave -benchtime 50ms -out /tmp/bench_smoke.json \
		-rig-out /tmp/bench7_smoke.json -rig-clients 128 -rig-ops 3000 \
		-trace-out /tmp/bench8_smoke.json \
		-recovery-out /tmp/bench10_smoke.json -recovery-small 5000 \
		-recovery-large 20000 -recovery-checkpoint-every 1000
