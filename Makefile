# Development targets. `make ci` is the full gate a change must pass.

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-save bench-save-smoke fuzz-smoke torture torture-smoke torture-long cover

ci: fmt-check vet build race test fuzz-smoke torture-smoke torture bench-save-smoke

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The concurrency-sensitive packages run under the race detector: the
# sharded market arbiter, the HTTP layer that fans batches into it, the
# journal (crash-recovery harness appends concurrently), and the
# telemetry registry/tracer (scraped while updated).
race:
	$(GO) test -race ./internal/market/... ./internal/httpapi/... ./internal/journal/... ./internal/obs/... ./internal/wire/... ./internal/client/...

test:
	$(GO) test ./...

# Every fuzz target gets a short randomized run on each CI pass; real
# corpus-growing sessions use `go test -fuzz <target> -fuzztime 10m` by
# hand. Go allows one -fuzz target per invocation, hence the loop.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzReadNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/journal/
	$(GO) test -run xxx -fuzz '^FuzzDescriptiveNeverNonsense$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzWilcoxonBounds$$' -fuzztime $(FUZZ_TIME) ./internal/stats/
	$(GO) test -run xxx -fuzz '^FuzzOptimalPrice$$' -fuzztime $(FUZZ_TIME) ./internal/auction/
	$(GO) test -run xxx -fuzz '^FuzzEpochPricerNeverPanics$$' -fuzztime $(FUZZ_TIME) ./internal/auction/
	$(GO) test -run xxx -fuzz '^FuzzBidBatchDecode$$' -fuzztime $(FUZZ_TIME) ./internal/httpapi/
	$(GO) test -run xxx -fuzz '^FuzzCommandDecode$$' -fuzztime $(FUZZ_TIME) ./internal/command/
	$(GO) test -run xxx -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZ_TIME) ./internal/wire/

# Model-based torture: seeded workloads differentially tested against the
# sequential reference model at shard counts {1,4,16} (~30s). Failures
# print a `shieldstorm -seed N -ops M` reproduction line.
TORTURE_SEED ?= 1
torture:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 2 -ops 100000

# Quick differential pass at the shard extremes (1 = fully serialized,
# 16 = default parallelism) — catches sharding bugs in seconds before
# ci pays for the full matrix.
torture-smoke:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 1 -ops 20000 -shards 1,16

# Nightly soak: many seeds, longer histories.
torture-long:
	$(GO) run ./cmd/shieldstorm -seed $(TORTURE_SEED) -seeds 16 -ops 250000 -v

# Aggregate statement coverage across all packages; the closing line is
# the figure recorded in EXPERIMENTS.md.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Runs the journal-durability and transport benchmarks and records them
# (with the derived group-commit and wire-vs-HTTP speedups) in
# BENCH_6.json, keeping the performance claims in DESIGN.md reproducible.
bench-save:
	$(GO) run ./cmd/benchsave -benchtime 1s

# CI variant: a short benchtime keeps the gate fast while still proving
# the benchmarks run and the artifact pipeline works end to end.
bench-save-smoke:
	$(GO) run ./cmd/benchsave -benchtime 50ms -out /tmp/bench_smoke.json
