# Development targets. `make ci` is the full gate a change must pass.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The concurrency-sensitive packages run under the race detector: the
# sharded market arbiter and the HTTP layer that fans batches into it.
race:
	$(GO) test -race ./internal/market/... ./internal/httpapi/...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .
