// Package shield is a Go implementation of the data-market protection
// techniques from "Protecting Data Markets from Strategic Buyers"
// (Raul Castro Fernandez, SIGMOD 2022): Epoch-Shield, Time-Shield and
// Uncertainty-Shield, combined into a multiplicative-weights posting-price
// algorithm for trading nonrival data, plus the full market substrate the
// paper's evaluation needs.
//
// The package is a facade: it re-exports the library's stable API so
// downstream users never import internal packages directly.
//
//   - Pricing engine (the paper's Algorithm 1): NewEngine / EngineConfig.
//     One engine prices one dataset online, protecting against strategic
//     low bids (epochs), strategizing over time (wait-periods) and
//     boundedly-rational reactions to price leaks (randomized prices).
//   - Market arbiter: NewMarket / MarketConfig. Sellers upload datasets,
//     the arbiter composes derived products and propagates demand through
//     the provenance graph, buyers bid once per period, winners pay the
//     posting price, sale revenue is split exactly among contributing
//     sellers.
//   - Ex-post trading (Section 8): NewExPostArbiter / ExPostConfig, for
//     experience goods where buyers learn the valuation only after use.
//   - Differential-privacy alternative (Section 6.3): NewLaplacePricer.
//   - Buyer behavior models, simulation harness, user-study replication
//     and every table/figure of the paper's evaluation: see Experiments*.
//
// Quickstart:
//
//	engine, err := shield.NewEngine(shield.EngineConfig{
//		Candidates: shield.LinearGrid(1, 200, 40),
//		EpochSize:  8,
//		MinBid:     1,
//	})
//	if err != nil { ... }
//	decision := engine.SubmitBid(120)
//	if decision.Allocated {
//		// the buyer pays decision.Price
//	} else {
//		// Time-Shield: the buyer waits decision.Wait periods
//	}
package shield

import (
	"io"
	"net/http"

	"github.com/datamarket/shield/internal/auction"
	"github.com/datamarket/shield/internal/auth"
	"github.com/datamarket/shield/internal/buyers"
	"github.com/datamarket/shield/internal/client"
	"github.com/datamarket/shield/internal/core"
	"github.com/datamarket/shield/internal/dp"
	"github.com/datamarket/shield/internal/experiments"
	"github.com/datamarket/shield/internal/expost"
	"github.com/datamarket/shield/internal/httpapi"
	"github.com/datamarket/shield/internal/journal"
	"github.com/datamarket/shield/internal/market"
	"github.com/datamarket/shield/internal/rng"
	"github.com/datamarket/shield/internal/stats"
	"github.com/datamarket/shield/internal/timeseries"
	"github.com/datamarket/shield/internal/userstudy"
)

// ---- Pricing engine (Algorithm 1) ----

// Engine is the protected posting-price engine; one Engine prices one
// dataset.
type Engine = core.Engine

// EngineConfig configures an Engine.
type EngineConfig = core.Config

// Decision is an Engine's answer to one bid.
type Decision = core.Decision

// DrawRule selects how the engine turns learner weights into prices.
type DrawRule = core.DrawRule

// Draw rules: DrawMW is the paper's choice (Uncertainty-Shield with the
// multiplicative-weights guarantee).
const (
	DrawMW     = core.DrawMW
	DrawMWMax  = core.DrawMWMax
	DrawAdHoc  = core.DrawAdHoc
	DrawRandom = core.DrawRandom
)

// WaitStrategy selects the Time-Shield wait-period replay strategy.
type WaitStrategy = core.WaitStrategy

// Wait strategies of Section 6.2.2.
const (
	WaitBound  = core.WaitBound
	WaitStable = core.WaitStable
)

// NewEngine builds a pricing engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.New(cfg) }

// LinearGrid returns n evenly spaced posting-price candidates in [lo, hi].
func LinearGrid(lo, hi float64, n int) []float64 { return auction.LinearGrid(lo, hi, n) }

// GeometricGrid returns n geometrically spaced candidates in [lo, hi].
func GeometricGrid(lo, hi float64, n int) []float64 { return auction.GeometricGrid(lo, hi, n) }

// OptimalPrice returns the revenue-optimal single posting price for a bid
// vector and its revenue (Equation 2).
func OptimalPrice(bids []float64) (price, revenue float64) { return auction.OptimalPrice(bids) }

// PostedRevenue returns the revenue a posting price extracts from bids.
func PostedRevenue(bids []float64, price float64) float64 { return auction.Revenue(bids, price) }

// ---- Market arbiter ----

// Market is the arbiter plus its books: datasets, engines, buyers,
// sellers, transactions, and the provenance-based revenue split.
type Market = market.Market

// MarketConfig configures a Market.
type MarketConfig = market.Config

// MarketDecision is the market's answer to a bid (losers see only their
// wait, never the posting price).
type MarketDecision = market.Decision

// Identifier types for market participants and assets.
type (
	BuyerID   = market.BuyerID
	SellerID  = market.SellerID
	DatasetID = market.DatasetID
)

// Transaction records one completed sale.
type Transaction = market.Transaction

// Money is integer micro-currency used by all ledgers.
type Money = market.Money

// Micro is the number of Money units per currency unit.
const Micro = market.Micro

// MoneyFromFloat converts currency units to Money, rounding half away
// from zero.
func MoneyFromFloat(f float64) Money { return market.FromFloat(f) }

// NewMarket builds a market arbiter.
func NewMarket(cfg MarketConfig) (*Market, error) { return market.New(cfg) }

// BidRequest is one bid of a batch submitted through Market.SubmitBids.
type BidRequest = market.BidRequest

// BidResult is the outcome of one bid of a batch: a MarketDecision or
// the error the equivalent single-bid call would have returned.
type BidResult = market.BidResult

// MarketShardStats reports one lock shard's datasets, bid traffic,
// contention and cumulative bid latency (see Market.ShardStats).
type MarketShardStats = market.ShardStats

// DefaultMarketShards is the lock-shard count used when
// MarketConfig.Shards is zero. Sharding affects only concurrency, never
// pricing.
const DefaultMarketShards = market.DefaultShards

// Utility is the deadline-patience buyer utility of Equation 1.
func Utility(valuation, price float64, allocated bool, t, deadline int) float64 {
	return market.Utility(valuation, price, allocated, t, deadline)
}

// PatienceFunc maps allocation time and deadline to a utility multiplier
// (the paper's delta, generalized).
type PatienceFunc = market.PatienceFunc

// Patience functions: the paper's deadline step plus the progressive
// decay variants Section 2.2 alludes to.
var (
	DeadlinePatience    PatienceFunc = market.DeadlinePatience
	LinearDecayPatience PatienceFunc = market.LinearDecayPatience
)

// ExpDecayPatience halves utility every halfLife periods until the
// deadline.
func ExpDecayPatience(halfLife int) PatienceFunc { return market.ExpDecayPatience(halfLife) }

// UtilityWith generalizes Equation 1 to an arbitrary patience function.
func UtilityWith(p PatienceFunc, valuation, price float64, allocated bool, t, deadline int) float64 {
	return market.UtilityWith(p, valuation, price, allocated, t, deadline)
}

// Market errors, for errors.Is checks.
var (
	ErrUnknownBuyer    = market.ErrUnknownBuyer
	ErrUnknownSeller   = market.ErrUnknownSeller
	ErrUnknownDataset  = market.ErrUnknownDataset
	ErrDuplicateID     = market.ErrDuplicateID
	ErrBadBid          = market.ErrBadBid
	ErrBidTooSoon      = market.ErrBidTooSoon
	ErrWaitActive      = market.ErrWaitActive
	ErrAlreadyAcquired = market.ErrAlreadyAcquired
	ErrDatasetInUse    = market.ErrDatasetInUse
)

// Stable machine-readable error codes carried by the HTTP API's
// versioned envelope {"error":{"code":"...","message":"..."}}. Clients
// should branch on these, never on message text.
const (
	ErrCodeDuplicateID     = httpapi.CodeDuplicateID
	ErrCodeUnknownBuyer    = httpapi.CodeUnknownBuyer
	ErrCodeUnknownSeller   = httpapi.CodeUnknownSeller
	ErrCodeUnknownDataset  = httpapi.CodeUnknownDataset
	ErrCodeBadBid          = httpapi.CodeBadBid
	ErrCodeBidTooSoon      = httpapi.CodeBidTooSoon
	ErrCodeBlockedUntil    = httpapi.CodeBlockedUntil
	ErrCodeAlreadyAcquired = httpapi.CodeAlreadyAcquired
	ErrCodeDatasetInUse    = httpapi.CodeDatasetInUse
	ErrCodeEmptyID         = httpapi.CodeEmptyID
	ErrCodeUnauthorized    = httpapi.CodeUnauthorized
	ErrCodeBadRequest      = httpapi.CodeBadRequest
	ErrCodeInternal        = httpapi.CodeInternal

	ErrCodeReadOnlyReplica    = httpapi.CodeReadOnlyReplica
	ErrCodeReplicaUnavailable = httpapi.CodeReplicaUnavailable
)

// APIError is the code/message body of the HTTP error envelope.
type APIError = httpapi.APIError

// ---- Ex-post trading (Section 8) ----

// ExPostArbiter trades data as an experience good: allocate first, pay
// after use, with Time-Shield penalties for under-payment.
type ExPostArbiter = expost.Arbiter

// ExPostConfig configures an ExPostArbiter.
type ExPostConfig = expost.Config

// GrantID identifies an outstanding ex-post grant.
type GrantID = expost.GrantID

// NewExPostArbiter builds an ex-post arbiter.
func NewExPostArbiter(cfg ExPostConfig) (*ExPostArbiter, error) { return expost.New(cfg) }

// ---- Differential-privacy alternative (Section 6.3) ----

// LaplacePricer releases epsilon-differentially-private posting prices.
type LaplacePricer = dp.LaplacePricer

// LaplaceConfig configures a LaplacePricer.
type LaplaceConfig = dp.Config

// NewLaplacePricer builds the DP pricing mechanism.
func NewLaplacePricer(cfg LaplaceConfig) (*LaplacePricer, error) { return dp.New(cfg) }

// ---- Buyer behavior ----

// BuyerStrategy decides one buyer's bidding for one dataset.
type BuyerStrategy = buyers.Strategy

// Buyer strategy implementations.
type (
	TruthfulBuyer     = buyers.Truthful
	StrategicBuyer    = buyers.Strategic
	LeakReactiveBuyer = buyers.LeakReactive
	NoisyBuyer        = buyers.Noisy
	SniperBuyer       = buyers.Sniper
)

// NewTruthfulBuyer bids the valuation until it wins.
func NewTruthfulBuyer(valuation float64) *TruthfulBuyer { return buyers.NewTruthful(valuation) }

// NewStrategicBuyer low-balls at beta*valuation until its last chance.
func NewStrategicBuyer(valuation, beta, floor float64, cautious bool) *StrategicBuyer {
	return buyers.NewStrategic(valuation, beta, floor, cautious)
}

// NewLeakReactiveBuyer anchors its bid to leaked prices (the
// boundedly-rational behavior of Section 5).
func NewLeakReactiveBuyer(valuation, sensitivity, margin float64) *LeakReactiveBuyer {
	return buyers.NewLeakReactive(valuation, sensitivity, margin)
}

// NewSniperBuyer lurks until lead periods before its deadline, then bids
// truthfully.
func NewSniperBuyer(valuation float64, lead int) *SniperBuyer {
	return buyers.NewSniper(valuation, lead)
}

// Participant pairs a registered buyer with a strategy and deadline.
type Participant = buyers.Participant

// SessionResult summarizes a bidding session.
type SessionResult = buyers.SessionResult

// RunSession drives participants against one dataset for a number of
// periods.
func RunSession(m *Market, dataset DatasetID, parts []Participant, periods int) (SessionResult, error) {
	return buyers.RunSession(m, dataset, parts, periods)
}

// ---- Bid signing (false-name-bidding deterrence, Section 2.1) ----

// BidVerifier enrolls buyers and verifies HMAC-signed bids.
type BidVerifier = auth.Verifier

// BidCredential is the per-buyer signing secret issued at enrollment.
type BidCredential = auth.Credential

// SignedBid is a bid bound to a buyer identity.
type SignedBid = auth.SignedBid

// NewBidVerifier returns a verifier. keySource supplies enrollment
// secrets (use crypto/rand in production); nil selects a deterministic
// source suitable only for tests and simulations.
func NewBidVerifier(keySource func() ([]byte, error)) *BidVerifier {
	return auth.NewVerifier(keySource)
}

// SignBid computes the MAC binding a bid to a buyer credential.
func SignBid(cred BidCredential, dataset string, amountMicros int64, nonce uint64) (SignedBid, error) {
	return auth.Sign(cred, dataset, amountMicros, nonce)
}

// ---- Persistence (event journal) ----

// JournaledMarket wraps a Market, appending every successful mutating
// operation to an event log from which the exact state can be rebuilt.
type JournaledMarket = journal.Market

// NewJournaledMarket builds a market whose operations are journaled to
// sink (the genesis record carries the configuration).
func NewJournaledMarket(cfg MarketConfig, sink io.Writer) (*JournaledMarket, error) {
	return journal.NewMarket(cfg, sink)
}

// OpenJournaledMarket creates or resumes a file-backed journaled market,
// returning the number of replayed events.
func OpenJournaledMarket(cfg MarketConfig, path string) (*JournaledMarket, int, error) {
	return journal.OpenFile(cfg, path)
}

// RestoreMarket rebuilds a market from a journal.
func RestoreMarket(r io.Reader) (*Market, error) { return journal.Restore(r) }

// CompactJournal rewrites a journal as a single full-state snapshot plus
// nothing: restart cost stops growing with history.
func CompactJournal(r io.Reader, w io.Writer) error { return journal.Compact(r, w) }

// CompactJournalFile compacts a journal file in place, atomically.
func CompactJournalFile(path string) error { return journal.CompactFile(path) }

// MarketSnapshot is the market's full serializable state; restoring it
// yields a market that behaves identically from that point on.
type MarketSnapshot = market.Snapshot

// RestoreMarketSnapshot reconstructs a market from a snapshot.
func RestoreMarketSnapshot(s MarketSnapshot) (*Market, error) {
	return market.RestoreSnapshot(s)
}

// ---- HTTP API ----

// NewMarketHandler serves the market over the JSON HTTP API of
// cmd/marketd. verifier may be nil to accept unsigned bids.
func NewMarketHandler(m *Market, verifier *BidVerifier) http.Handler {
	s := httpapi.NewServer(m)
	if verifier != nil {
		s = s.WithAuth(verifier)
	}
	return s.Routes()
}

// NewJournaledMarketHandler is NewMarketHandler over a journaled market.
func NewJournaledMarketHandler(m *JournaledMarket, verifier *BidVerifier) http.Handler {
	s := httpapi.NewJournaled(m)
	if verifier != nil {
		s = s.WithAuth(verifier)
	}
	return s.Routes()
}

// ---- Unified client ----

// Client is the typed client for a marketd server: one interface, two
// interchangeable transports (HTTP/JSON and the binary wire protocol).
// Server-reported failures surface as *APIError carrying a stable
// ErrCode* value; semantics are identical on either transport.
type Client = client.Client

// ClientOption configures the client's HTTP transport at dial time.
type ClientOption = client.Option

// DatasetStats is the diagnostic snapshot Client.Stats returns.
type DatasetStats = market.DatasetStats

// Dial connects to a marketd server and selects the transport from the
// target's scheme: "http://" or "https://" for the JSON API, "wire://"
// or a bare "host:port" for the binary wire protocol (marketd
// -wire-addr).
func Dial(target string, opts ...ClientOption) (Client, error) {
	return client.Dial(target, opts...)
}

// NewHTTPClient returns a Client over the HTTP/JSON API at base.
func NewHTTPClient(base string, opts ...ClientOption) Client {
	return client.NewHTTP(base, opts...)
}

// ErrClientConnClosed is the wire transport's dead-connection sentinel:
// once a wire client's stream fails (server hangup, expired deadline,
// desynchronized frames), every in-flight and later call returns an
// error wrapping it. Close the client and redial.
var ErrClientConnClosed = client.ErrConnClosed

// DialWireClient returns a Client speaking the binary wire protocol to
// addr ("host:port").
func DialWireClient(addr string) (Client, error) { return client.DialWire(addr) }

// WithClientCredential makes the HTTP transport sign every bid with the
// hex secret issued by Client.RegisterBuyer, starting at nonce.
func WithClientCredential(secret string, nonce uint64) ClientOption {
	return client.WithCredential(secret, nonce)
}

// WithClientOperatorToken sends token as a bearer token on every HTTP
// request, unlocking the operator endpoints under auth.
func WithClientOperatorToken(token string) ClientOption {
	return client.WithOperatorToken(token)
}

// ---- Workloads, panels and experiments ----

// RNG is the deterministic random number generator used throughout.
type RNG = rng.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ARConfig parameterizes the AR(1) valuation generator of Section 7.2.1.
type ARConfig = timeseries.ARConfig

// StrategicConfig is the paper's <PCT, beta, H> strategic-buyer triple.
type StrategicConfig = timeseries.StrategicConfig

// Bid is one submitted bid in a simulated stream.
type Bid = timeseries.Bid

// GenerateValuations draws an AR(1) valuation series.
func GenerateValuations(cfg ARConfig, r *RNG) ([]float64, error) {
	return timeseries.GenerateValuations(cfg, r)
}

// TransformStrategic applies the strategic-buyer transform to a valuation
// series.
func TransformStrategic(valuations []float64, cfg StrategicConfig, r *RNG) ([]Bid, error) {
	return timeseries.Transform(valuations, cfg, r)
}

// Panel is the synthetic user-study participant panel of Section 7.1.
type Panel = userstudy.Panel

// NewPanel draws a reproducible persona panel (n <= 0 selects the paper's
// 50 participants).
func NewPanel(n int, seed uint64) *Panel { return userstudy.NewPanel(n, seed) }

// ExperimentOptions scales the paper experiments; the zero value
// reproduces the paper's settings (100 series, 50 participants).
type ExperimentOptions = experiments.Options

// Summary is the five-number box-plot summary used by experiment results.
type Summary = stats.Summary

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }
